//! The unified run telemetry every [`crate::runner::Runner`] execution
//! returns: one [`RoundStat`] per executed round, tagged with the phase it
//! belonged to and the direction the policy chose for it.
//!
//! The report is the engine's answer to the paper's measurement discipline:
//! whatever the algorithm, a run is a sequence of rounds, each consuming a
//! frontier of known size and incident-edge count in one direction — the
//! exact quantities the §5 switching strategies decide on.

use pp_core::Direction;

/// One executed round of a [`crate::program::Program`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStat {
    /// Global round index across the whole run.
    pub round: u32,
    /// Phase the round belonged to (epoch/bucket/peel-level/iteration —
    /// whatever [`crate::program::Program::next_phase`] demarcates).
    pub phase: u32,
    /// Direction the policy chose.
    pub dir: Direction,
    /// Vertices in the consumed frontier (`|F|`).
    pub frontier: usize,
    /// Out-edges of the consumed frontier (`|E_F|`, what the policy saw).
    /// Zero for [`crate::program::PhaseKernel::VertexStep`] rounds: no
    /// edge is traversed, so none is charged to
    /// [`RunReport::edges_traversed`].
    pub frontier_edges: u64,
    /// Updates routed through the owner-computes exchange this round — the
    /// atomics a shared-state push would have issued instead. Zero for
    /// pull rounds and for every round under
    /// [`crate::partitioned::ExecutionMode::Atomic`].
    pub remote_updates: u64,
    /// Largest single owner's inbound buffer backlog at the round's
    /// exchange barrier (occupancy skew); zero when nothing was buffered.
    pub buffer_peak: u64,
}

/// Per-round statistics of one full run through the [`crate::Runner`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Every executed round, in order.
    pub rounds: Vec<RoundStat>,
    /// Number of phases that executed at least one round. The zero-round
    /// run — initial frontier empty, [`crate::Program::next_phase`]
    /// immediately `None` — reports 0, identical to `RunReport::default()`.
    /// Empty-frontier reseeds do not advance the phase index (the runner
    /// asks again under the same index), so the `phase` values appearing
    /// in [`RunReport::rounds`] are exactly `0..phases` with no gaps and
    /// `phases` is a valid bound for [`RunReport::phase_rounds`] sweeps.
    pub phases: u32,
}

impl RunReport {
    /// Total executed rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Rounds the policy scheduled as push.
    pub fn push_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.dir == Direction::Push)
            .count()
    }

    /// Rounds the policy scheduled as pull.
    pub fn pull_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.dir == Direction::Pull)
            .count()
    }

    /// Whether both directions were actually exercised (an adaptive policy
    /// that never switched ran a de-facto fixed schedule).
    pub fn switched(&self) -> bool {
        self.push_rounds() > 0 && self.pull_rounds() > 0
    }

    /// The rounds belonging to `phase`, in order.
    pub fn phase_rounds(&self, phase: u32) -> impl Iterator<Item = &RoundStat> {
        self.rounds.iter().filter(move |r| r.phase == phase)
    }

    /// Sum of `|E_F|` over all rounds — the total traversal work the
    /// schedule touched (a push/pull-invariant measure of algorithm size).
    pub fn edges_traversed(&self) -> u64 {
        self.rounds.iter().map(|r| r.frontier_edges).sum()
    }

    /// Total updates routed through the owner-computes exchange — §5's
    /// "between 0 and 2m remote updates per sweep", summed over the run.
    pub fn remote_updates(&self) -> u64 {
        self.rounds.iter().map(|r| r.remote_updates).sum()
    }

    /// Largest per-owner buffer backlog observed in any round of the run.
    pub fn max_buffer_peak(&self) -> u64 {
        self.rounds.iter().map(|r| r.buffer_peak).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(round: u32, phase: u32, dir: Direction, frontier: usize, edges: u64) -> RoundStat {
        RoundStat {
            round,
            phase,
            dir,
            frontier,
            frontier_edges: edges,
            remote_updates: 0,
            buffer_peak: 0,
        }
    }

    #[test]
    fn aggregates_count_directions_and_phases() {
        let report = RunReport {
            rounds: vec![
                stat(0, 0, Direction::Push, 1, 2),
                stat(1, 0, Direction::Pull, 10, 40),
                stat(2, 1, Direction::Push, 3, 6),
            ],
            phases: 2,
        };
        assert_eq!(report.num_rounds(), 3);
        assert_eq!(report.push_rounds(), 2);
        assert_eq!(report.pull_rounds(), 1);
        assert!(report.switched());
        assert_eq!(report.phase_rounds(0).count(), 2);
        assert_eq!(report.phase_rounds(1).count(), 1);
        assert_eq!(report.edges_traversed(), 48);
    }

    #[test]
    fn remote_update_aggregates_sum_and_peak() {
        let mut report = RunReport {
            rounds: vec![stat(0, 0, Direction::Push, 4, 9)],
            phases: 1,
        };
        assert_eq!(report.remote_updates(), 0);
        assert_eq!(report.max_buffer_peak(), 0);
        report.rounds.push(RoundStat {
            remote_updates: 12,
            buffer_peak: 7,
            ..stat(1, 0, Direction::Push, 8, 20)
        });
        report.rounds.push(RoundStat {
            remote_updates: 5,
            buffer_peak: 3,
            ..stat(2, 0, Direction::Push, 2, 4)
        });
        assert_eq!(report.remote_updates(), 17);
        assert_eq!(report.max_buffer_peak(), 7);
    }

    #[test]
    fn empty_report_never_switched() {
        let report = RunReport::default();
        assert_eq!(report.num_rounds(), 0);
        assert!(!report.switched());
        assert_eq!(report.edges_traversed(), 0);
    }
}
