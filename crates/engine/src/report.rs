//! The unified run telemetry every [`crate::runner::Runner`] execution
//! returns: one [`RoundStat`] per executed round, tagged with the phase it
//! belonged to and the direction the policy chose for it.
//!
//! The report is the engine's answer to the paper's measurement discipline:
//! whatever the algorithm, a run is a sequence of rounds, each consuming a
//! frontier of known size and incident-edge count in one direction — the
//! exact quantities the §5 switching strategies decide on.

use pp_core::Direction;
use pp_telemetry::timing::{self, LogHistogram, WorkerLap};
use pp_telemetry::trace::ChromeTrace;

use crate::policy::PolicyDecision;

/// One executed round of a [`crate::program::Program`] run.
///
/// The timing fields (`start_ns`, `duration_ns`) and the `decision` record
/// are filled only when the runner collects at the corresponding
/// [`pp_telemetry::MetricsLevel`]; at `Off` they stay `0`/`None`, keeping
/// the stat — and the whole [`RunReport`] — identical to the untimed one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundStat {
    /// Global round index across the whole run.
    pub round: u32,
    /// Phase the round belonged to (epoch/bucket/peel-level/iteration —
    /// whatever [`crate::program::Program::next_phase`] demarcates).
    pub phase: u32,
    /// Direction the policy chose.
    pub dir: Direction,
    /// Vertices in the consumed frontier (`|F|`).
    pub frontier: usize,
    /// Out-edges of the consumed frontier (`|E_F|`, what the policy saw).
    /// Zero for [`crate::program::PhaseKernel::VertexStep`] rounds: no
    /// edge is traversed, so none is charged to
    /// [`RunReport::edges_traversed`].
    pub frontier_edges: u64,
    /// Updates routed through the owner-computes exchange this round — the
    /// atomics a shared-state push would have issued instead. Zero for
    /// pull rounds and for every round under
    /// [`crate::partitioned::ExecutionMode::Atomic`].
    pub remote_updates: u64,
    /// Largest single owner's inbound buffer backlog at the round's
    /// exchange barrier (occupancy skew); zero when nothing was buffered.
    pub buffer_peak: u64,
    /// Round start, nanoseconds since the run began (`MetricsLevel::Timing`
    /// and up; 0 otherwise).
    pub start_ns: u64,
    /// Round wall time in nanoseconds (`MetricsLevel::Timing` and up; 0
    /// otherwise).
    pub duration_ns: u64,
    /// Why the policy chose `dir` (`MetricsLevel::Counts` and up, edge-map
    /// rounds only — vertex-step rounds reuse the current direction without
    /// observing, so there is no decision to record).
    pub decision: Option<PolicyDecision>,
    /// Batch lanes active in the round's frontier (a batched multi-source
    /// program reports its [`crate::Program::lanes_active`]); 0 for
    /// single-source programs, which have no lane axis.
    pub lanes_active: u32,
}

/// Per-source statistics of one batched multi-source run — the per-lane
/// axis of a [`RunReport`] (see [`crate::algo::msbfs`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceStat {
    /// The source vertex this lane traversed from.
    pub source: u32,
    /// Rounds in which the lane's sub-frontier was non-empty.
    pub rounds_active: u32,
    /// Deepest level the lane discovered (its eccentricity bound) —
    /// distance for distance-style programs.
    pub depth: u32,
}

/// Per-round statistics of one full run through the [`crate::Runner`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Every executed round, in order.
    pub rounds: Vec<RoundStat>,
    /// Number of phases that executed at least one round. The zero-round
    /// run — initial frontier empty, [`crate::Program::next_phase`]
    /// immediately `None` — reports 0, identical to `RunReport::default()`.
    /// Empty-frontier reseeds do not advance the phase index (the runner
    /// asks again under the same index), so the `phase` values appearing
    /// in [`RunReport::rounds`] are exactly `0..phases` with no gaps and
    /// `phases` is a valid bound for [`RunReport::phase_rounds`] sweeps.
    pub phases: u32,
    /// Whole-run wall time in nanoseconds (`MetricsLevel::Timing` and up;
    /// 0 otherwise). Covers the full `Runner::run`, so it is ≥ the sum of
    /// round durations (frontier bookkeeping between rounds is included).
    pub elapsed_ns: u64,
    /// One busy/idle/claims ledger per pool worker for the whole run
    /// (`MetricsLevel::Timing` and up; empty otherwise). Index = worker id,
    /// worker 0 is the calling thread.
    pub worker_laps: Vec<WorkerLap>,
    /// Per-round × per-worker busy nanoseconds (`MetricsLevel::Trace`
    /// only; empty otherwise): `round_worker_busy[i][w]` is worker `w`'s
    /// busy time inside `rounds[i]` — the substrate the per-worker Chrome
    /// trace tracks are drawn from.
    pub round_worker_busy: Vec<Vec<u64>>,
    /// Per-source statistics of a batched multi-source run (one entry per
    /// lane, in lane order); empty for single-source programs, keeping
    /// their reports identical to the pre-batch shape.
    pub sources: Vec<SourceStat>,
}

impl RunReport {
    /// Total executed rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Rounds the policy scheduled as push.
    pub fn push_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.dir == Direction::Push)
            .count()
    }

    /// Rounds the policy scheduled as pull.
    pub fn pull_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.dir == Direction::Pull)
            .count()
    }

    /// Whether both directions were actually exercised (an adaptive policy
    /// that never switched ran a de-facto fixed schedule).
    pub fn switched(&self) -> bool {
        self.push_rounds() > 0 && self.pull_rounds() > 0
    }

    /// The rounds belonging to `phase`, in order.
    pub fn phase_rounds(&self, phase: u32) -> impl Iterator<Item = &RoundStat> {
        self.rounds.iter().filter(move |r| r.phase == phase)
    }

    /// Sum of `|E_F|` over all rounds — the total traversal work the
    /// schedule touched (a push/pull-invariant measure of algorithm size).
    pub fn edges_traversed(&self) -> u64 {
        self.rounds.iter().map(|r| r.frontier_edges).sum()
    }

    /// Total updates routed through the owner-computes exchange — §5's
    /// "between 0 and 2m remote updates per sweep", summed over the run.
    pub fn remote_updates(&self) -> u64 {
        self.rounds.iter().map(|r| r.remote_updates).sum()
    }

    /// Largest per-owner buffer backlog observed in any round of the run.
    pub fn max_buffer_peak(&self) -> u64 {
        self.rounds.iter().map(|r| r.buffer_peak).max().unwrap_or(0)
    }

    /// Sum of round durations in nanoseconds (0 when timing was off).
    pub fn round_duration_ns(&self) -> u64 {
        self.rounds.iter().map(|r| r.duration_ns).sum()
    }

    /// Wall time spent in rounds of `phase`, in nanoseconds.
    pub fn phase_duration_ns(&self, phase: u32) -> u64 {
        self.phase_rounds(phase).map(|r| r.duration_ns).sum()
    }

    /// Wall time spent in rounds scheduled in `dir`, in nanoseconds — the
    /// run's push/pull time split.
    pub fn dir_duration_ns(&self, dir: Direction) -> u64 {
        self.rounds
            .iter()
            .filter(|r| r.dir == dir)
            .map(|r| r.duration_ns)
            .sum()
    }

    /// Rounds whose decision record switched direction.
    pub fn switches(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.decision.is_some_and(|d| d.switched))
            .count()
    }

    /// Load-imbalance ratio of the run's worker laps: max busy over mean
    /// busy (1.0 = perfectly balanced; 0.0 when no laps were recorded).
    pub fn imbalance(&self) -> f64 {
        timing::imbalance(&self.worker_laps)
    }

    /// Log₂ histogram of the round durations (p50/p95/p99 of round wall
    /// times; empty when timing was off).
    pub fn round_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for r in &self.rounds {
            h.record(r.duration_ns);
        }
        h
    }

    /// Maps the run onto Chrome trace-event tracks (requires a report
    /// collected at `MetricsLevel::Trace` for the per-worker lanes;
    /// `Timing` still yields the round and phase tracks):
    ///
    /// * tid 0 — one duration event per round (args: phase, direction,
    ///   `|F|`, `|E_F|`, and the decision's share/threshold when present),
    ///   plus an instant marker on every direction switch;
    /// * tid 1 — one duration event per phase, spanning its first round's
    ///   start to its last round's end;
    /// * tid `10 + w` — worker `w`'s busy span inside each round (drawn
    ///   from [`RunReport::round_worker_busy`]). Every worker in
    ///   [`RunReport::worker_laps`] gets a named track even if it never
    ///   ran a chunk, so lane count always equals pool width.
    pub fn chrome_trace(&self, label: &str) -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.name_track(0, format!("{label}: rounds"));
        t.name_track(1, format!("{label}: phases"));
        for w in 0..self.worker_laps.len() {
            t.name_track(WORKER_TID_BASE + w as u32, format!("worker {w}"));
        }
        for r in &self.rounds {
            let mut args: Vec<(String, pp_telemetry::trace::ArgValue)> = vec![
                ("phase".to_string(), (r.phase as u64).into()),
                ("dir".to_string(), dir_name(r.dir).into()),
                ("frontier".to_string(), r.frontier.into()),
                ("frontier_edges".to_string(), r.frontier_edges.into()),
            ];
            if let Some(d) = r.decision {
                args.push(("share".to_string(), d.observed_share.into()));
                args.push(("threshold".to_string(), d.threshold.into()));
            }
            if r.lanes_active > 0 {
                args.push(("lanes_active".to_string(), u64::from(r.lanes_active).into()));
            }
            t.duration(
                format!("round {}", r.round),
                "round",
                0,
                r.start_ns,
                r.duration_ns,
                args,
            );
            if r.decision.is_some_and(|d| d.switched) {
                t.instant(
                    format!("switch → {}", dir_name(r.dir)),
                    "policy",
                    0,
                    r.start_ns,
                    vec![],
                );
            }
        }
        for phase in 0..self.phases {
            let mut bounds: Option<(u64, u64)> = None;
            for r in self.phase_rounds(phase) {
                let end = r.start_ns + r.duration_ns;
                bounds = Some(match bounds {
                    None => (r.start_ns, end),
                    Some((s, e)) => (s.min(r.start_ns), e.max(end)),
                });
            }
            if let Some((start, end)) = bounds {
                t.duration(
                    format!("phase {phase}"),
                    "phase",
                    1,
                    start,
                    end - start,
                    vec![],
                );
            }
        }
        for (i, busy) in self.round_worker_busy.iter().enumerate() {
            let r = &self.rounds[i];
            for (w, &busy_ns) in busy.iter().enumerate() {
                if busy_ns > 0 {
                    t.duration(
                        format!("round {}", r.round),
                        "worker",
                        WORKER_TID_BASE + w as u32,
                        r.start_ns,
                        // A worker's busy time inside the round, drawn from
                        // the round's start: span length is exact, placement
                        // within the round is not tracked per chunk.
                        busy_ns.min(r.duration_ns),
                        vec![],
                    );
                }
            }
        }
        t
    }
}

/// First worker track id in [`RunReport::chrome_trace`] (tids 0/1 are the
/// round/phase tracks; the gap keeps future run-level tracks from colliding
/// with worker lanes).
pub const WORKER_TID_BASE: u32 = 10;

fn dir_name(d: Direction) -> &'static str {
    match d {
        Direction::Push => "push",
        Direction::Pull => "pull",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(round: u32, phase: u32, dir: Direction, frontier: usize, edges: u64) -> RoundStat {
        RoundStat {
            round,
            phase,
            dir,
            frontier,
            frontier_edges: edges,
            remote_updates: 0,
            buffer_peak: 0,
            start_ns: 0,
            duration_ns: 0,
            decision: None,
            lanes_active: 0,
        }
    }

    #[test]
    fn aggregates_count_directions_and_phases() {
        let report = RunReport {
            rounds: vec![
                stat(0, 0, Direction::Push, 1, 2),
                stat(1, 0, Direction::Pull, 10, 40),
                stat(2, 1, Direction::Push, 3, 6),
            ],
            phases: 2,
            ..RunReport::default()
        };
        assert_eq!(report.num_rounds(), 3);
        assert_eq!(report.push_rounds(), 2);
        assert_eq!(report.pull_rounds(), 1);
        assert!(report.switched());
        assert_eq!(report.phase_rounds(0).count(), 2);
        assert_eq!(report.phase_rounds(1).count(), 1);
        assert_eq!(report.edges_traversed(), 48);
    }

    #[test]
    fn remote_update_aggregates_sum_and_peak() {
        let mut report = RunReport {
            rounds: vec![stat(0, 0, Direction::Push, 4, 9)],
            phases: 1,
            ..RunReport::default()
        };
        assert_eq!(report.remote_updates(), 0);
        assert_eq!(report.max_buffer_peak(), 0);
        report.rounds.push(RoundStat {
            remote_updates: 12,
            buffer_peak: 7,
            ..stat(1, 0, Direction::Push, 8, 20)
        });
        report.rounds.push(RoundStat {
            remote_updates: 5,
            buffer_peak: 3,
            ..stat(2, 0, Direction::Push, 2, 4)
        });
        assert_eq!(report.remote_updates(), 17);
        assert_eq!(report.max_buffer_peak(), 7);
    }

    #[test]
    fn empty_report_never_switched() {
        let report = RunReport::default();
        assert_eq!(report.num_rounds(), 0);
        assert!(!report.switched());
        assert_eq!(report.edges_traversed(), 0);
        assert_eq!(report.elapsed_ns, 0);
        assert_eq!(report.imbalance(), 0.0);
        assert_eq!(report.switches(), 0);
    }

    fn timed(
        round: u32,
        phase: u32,
        dir: Direction,
        start_ns: u64,
        duration_ns: u64,
        switched: bool,
    ) -> RoundStat {
        RoundStat {
            start_ns,
            duration_ns,
            decision: Some(PolicyDecision {
                observed_share: 0.5,
                threshold: 1.0 / 15.0,
                dir,
                switched,
            }),
            ..stat(round, phase, dir, 4, 8)
        }
    }

    fn timed_report() -> RunReport {
        RunReport {
            rounds: vec![
                timed(0, 0, Direction::Push, 0, 100, false),
                timed(1, 0, Direction::Pull, 150, 300, true),
                timed(2, 1, Direction::Pull, 500, 200, false),
            ],
            phases: 2,
            elapsed_ns: 800,
            worker_laps: vec![
                WorkerLap {
                    busy_ns: 600,
                    idle_ns: 200,
                    chunks_claimed: 5,
                },
                WorkerLap {
                    busy_ns: 200,
                    idle_ns: 600,
                    chunks_claimed: 2,
                },
            ],
            round_worker_busy: vec![vec![80, 20], vec![250, 50], vec![150, 50]],
            sources: Vec::new(),
        }
    }

    #[test]
    fn timing_aggregates_split_by_phase_and_direction() {
        let r = timed_report();
        assert_eq!(r.round_duration_ns(), 600);
        assert_eq!(r.phase_duration_ns(0), 400);
        assert_eq!(r.phase_duration_ns(1), 200);
        assert_eq!(r.dir_duration_ns(Direction::Push), 100);
        assert_eq!(r.dir_duration_ns(Direction::Pull), 500);
        assert_eq!(r.switches(), 1);
        // max busy 600 / mean busy 400 = 1.5.
        assert!((r.imbalance() - 1.5).abs() < 1e-12);
        let h = r.round_histogram();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn chrome_trace_has_round_phase_and_worker_tracks() {
        let r = timed_report();
        let t = r.chrome_trace("bfs");
        let json = t.to_json();
        // Named tracks: rounds, phases, one per worker.
        assert!(json.contains("bfs: rounds"));
        assert!(json.contains("bfs: phases"));
        assert!(json.contains("\"worker 0\""));
        assert!(json.contains("\"worker 1\""));
        // One duration event per round, one instant for the switch.
        assert!(json.contains("\"round 0\""));
        assert!(json.contains("\"round 2\""));
        assert!(json.contains("switch → pull"));
        // Phase spans: phase 0 covers rounds 0–1 (0..450 → dur 450 ns =
        // 0.450 µs).
        assert!(json.contains("\"phase 0\""));
        assert!(json.contains("\"dur\": 0.450"));
        // Worker lanes use tids ≥ WORKER_TID_BASE.
        assert!(json.contains(&format!("\"tid\": {}", WORKER_TID_BASE)));
        // 4 metadata + 3 rounds + 1 switch + 2 phases + 6 worker spans.
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn untimed_trace_still_names_a_track_per_worker() {
        let mut r = timed_report();
        r.round_worker_busy.clear();
        let t = r.chrome_trace("x");
        let json = t.to_json();
        assert!(json.contains("\"worker 0\"") && json.contains("\"worker 1\""));
        assert_eq!(t.len(), 10, "no worker spans, tracks still named");
    }
}
