//! The owner-computes exchange buffers: one queue per (sender part, owner
//! part) pair.
//!
//! During a partition-aware push round's traversal phase, the worker
//! executing part `t` appends every update aimed at a foreign-owned vertex
//! to `(t, owner)`'s queue — the only synchronization-free place it can go.
//! After the exchange barrier, each owner drains its inbound column and
//! applies the updates to vertices it owns. Both sides are single-writer by
//! construction, so the queues are plain `Vec`s behind `UnsafeCell` —
//! buffering a remote update costs one bump allocation-amortized write, not
//! a CAS.

use std::cell::UnsafeCell;

use pp_graph::{VertexId, Weight};

/// One buffered remote update: frontier vertex `src` updates foreign-owned
/// `dst` over an edge of weight `w` (1 on unweighted graphs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Update {
    /// The pushing frontier vertex.
    pub src: VertexId,
    /// The foreign-owned target the owner will apply the update to.
    pub dst: VertexId,
    /// Edge weight.
    pub w: Weight,
}

/// `parts × parts` single-writer update queues, reused across rounds (a
/// drain clears lengths but keeps capacity, so steady-state rounds do not
/// allocate).
pub struct ExchangeBuffers {
    parts: usize,
    /// Queue `(sender, owner)` lives at `sender * parts + owner`.
    slots: Vec<UnsafeCell<Vec<Update>>>,
}

// SAFETY: every `&self` method taking `unsafe` spells out its single-writer
// discipline; the type adds no sharing beyond what those contracts permit.
unsafe impl Sync for ExchangeBuffers {}

impl ExchangeBuffers {
    /// Empty buffers for `parts` partition parts.
    pub fn new(parts: usize) -> Self {
        Self {
            parts,
            slots: (0..parts * parts)
                .map(|_| UnsafeCell::new(Vec::new()))
                .collect(),
        }
    }

    /// Number of parts the buffers were sized for.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Buffers `up` from `sender`'s worker toward `owner`'s inbound column
    /// and returns the address of the buffered cell (for probe accounting).
    ///
    /// # Safety
    /// Only the worker currently executing part `sender` may call this, and
    /// no drain of `(_, owner)` columns may be in flight (the two phases of
    /// a round are separated by a pool barrier).
    #[inline]
    pub unsafe fn push(&self, sender: usize, owner: usize, up: Update) -> usize {
        let q = &mut *self.slots[sender * self.parts + owner].get();
        q.push(up);
        q.last().unwrap() as *const Update as usize
    }

    /// Updates currently buffered toward `owner` across all senders.
    ///
    /// # Safety
    /// No worker may be pushing or draining concurrently (call between the
    /// two pool rounds, from the coordinating thread).
    pub unsafe fn inbound_len(&self, owner: usize) -> u64 {
        (0..self.parts)
            .map(|sender| (*self.slots[sender * self.parts + owner].get()).len() as u64)
            .sum()
    }

    /// Applies `f` to every update buffered toward `owner` (sender order,
    /// FIFO within a sender) and empties those queues, keeping capacity.
    ///
    /// # Safety
    /// Only the worker currently delivering for `owner` may call this, and
    /// no traversal-phase pushes may be in flight.
    pub unsafe fn drain_inbound(&self, owner: usize, mut f: impl FnMut(Update)) {
        for sender in 0..self.parts {
            let q = &mut *self.slots[sender * self.parts + owner].get();
            for &up in q.iter() {
                f(up);
            }
            q.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_routes_to_the_owner_column_and_drain_empties_it() {
        let b = ExchangeBuffers::new(3);
        unsafe {
            b.push(
                0,
                2,
                Update {
                    src: 1,
                    dst: 9,
                    w: 1,
                },
            );
            b.push(
                1,
                2,
                Update {
                    src: 4,
                    dst: 9,
                    w: 7,
                },
            );
            b.push(
                0,
                1,
                Update {
                    src: 1,
                    dst: 5,
                    w: 1,
                },
            );
            let lens: Vec<u64> = (0..3).map(|o| b.inbound_len(o)).collect();
            assert_eq!(lens, vec![0, 1, 2], "owner 2 holds the largest backlog");

            let mut seen = Vec::new();
            b.drain_inbound(2, |up| seen.push(up));
            assert_eq!(
                seen,
                vec![
                    Update {
                        src: 1,
                        dst: 9,
                        w: 1
                    },
                    Update {
                        src: 4,
                        dst: 9,
                        w: 7
                    },
                ],
                "sender order, FIFO within a sender"
            );
            assert_eq!(b.inbound_len(2), 0, "drained column is empty");
            assert_eq!(b.inbound_len(1), 1, "owner 1's update still queued");
            b.drain_inbound(1, |_| {});
            assert_eq!(b.inbound_len(1), 0);
        }
    }

    #[test]
    fn drained_queues_keep_their_capacity() {
        let b = ExchangeBuffers::new(2);
        unsafe {
            for i in 0..100 {
                b.push(
                    0,
                    1,
                    Update {
                        src: i,
                        dst: 0,
                        w: 1,
                    },
                );
            }
            b.drain_inbound(1, |_| {});
            let q = &*b.slots[1].get();
            assert!(q.capacity() >= 100, "drain must not shrink the arena");
            assert!(q.is_empty());
        }
    }
}
