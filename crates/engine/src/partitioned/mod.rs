//! Partition-aware execution (§5): atomic-free push via owner-computes
//! delivery.
//!
//! The paper's central shared-memory observation is that the push
//! schedule's per-edge atomics are an artifact of *not knowing who owns
//! the target*. Fix an ownership map (a [`BlockPartition`] of the vertex
//! range over the workers) and split every adjacency list into the
//! same-owner and foreign-owner halves
//! ([`pp_graph::PartitionAwareGraph`], the `2n + 2m`-cell representation)
//! and a pushing thread can
//!
//! * apply **local** updates with plain writes — both endpoints belong to
//!   it, so nobody races — and
//! * **buffer** remote updates into a per-(worker × owner) queue
//!   ([`buffers::ExchangeBuffers`]), one [`pp_telemetry::Probe::remote_send`]
//!   event each, instead of a CAS.
//!
//! A barrier later, every owner drains its inbound queues and applies the
//! buffered updates to its own vertices — again plain writes
//! ([`exchange`]). No atomic RMW is issued anywhere on the push path; the
//! synchronization is the ownership discipline plus one barrier per round,
//! exactly §5's owner-computes exchange.
//!
//! The mode is a property of the *run*, not the algorithm:
//! [`crate::Runner::mode`] takes an [`ExecutionMode`] and every
//! [`crate::Program`] runs unmodified on either, because the delivery
//! applies updates through [`crate::EdgeKernel::apply_owned`] — by default
//! the program's own atomic-free pull kernel gated by its pull candidate,
//! which the trait contract already requires to encode the same update
//! semantics as `push_update`. Pull rounds are untouched (they were
//! already synchronization-free), so a [`crate::DirectionPolicy`] may
//! interleave owner-computes push rounds with pull rounds freely; the
//! policy's frontier-share decision is mode-independent.
//!
//! Telemetry: each partition-aware push round contributes
//! `remote_updates` (exchange volume — the would-be atomics) and
//! `buffer_peak` (largest single owner's backlog, the skew a per-owner
//! rebalancer would act on) to its [`crate::report::RoundStat`].

pub mod buffers;
pub mod exchange;

pub use buffers::{ExchangeBuffers, Update};
pub use exchange::PaRoundStats;

use pp_graph::{BlockPartition, CsrGraph, PartitionAwareGraph};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::probes::{ProbeShards, ShardProbe};

/// How a [`crate::Runner`] executes push rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Shared-state push: any thread may update any vertex, synchronizing
    /// per edge (CAS / FAA / lock) — the pre-§5 baseline.
    #[default]
    Atomic,
    /// Owner-computes push over the [`PartitionAwareGraph`] split: plain
    /// writes locally, buffered exchange remotely, zero atomics.
    PartitionAware,
}

impl ExecutionMode {
    /// Every mode a sweep should cover, labeled for benchmark/test axes —
    /// the same single-source-of-truth pattern as
    /// [`crate::DirectionPolicy::sweep`].
    pub fn sweep() -> [(&'static str, ExecutionMode); 2] {
        [
            ("atomic", ExecutionMode::Atomic),
            ("pa", ExecutionMode::PartitionAware),
        ]
    }
}

/// The per-run state of partition-aware execution: the split representation
/// plus the reusable exchange buffers. Built by the runner at the start of
/// a `PartitionAware` run (one part per engine thread) and threaded through
/// its push rounds; `&mut` access serializes rounds, which is what the
/// buffers' single-writer contracts assume.
pub struct PaContext {
    pa: PartitionAwareGraph,
    buffers: ExchangeBuffers,
    scratch: exchange::Scratch,
}

impl PaContext {
    /// Builds the §5 representation of `g` split over `parts` owners.
    pub fn new(g: &CsrGraph, parts: usize) -> Self {
        let parts = parts.max(1);
        Self {
            pa: PartitionAwareGraph::new(g, BlockPartition::new(g.num_vertices(), parts)),
            buffers: ExchangeBuffers::new(parts),
            scratch: exchange::Scratch::new(parts, g.num_vertices()),
        }
    }

    /// The underlying split representation.
    pub fn partition_graph(&self) -> &PartitionAwareGraph {
        &self.pa
    }

    /// Executes one owner-computes push round and returns the next
    /// frontier plus the round's exchange telemetry. Mirrors
    /// [`Engine::edge_map`]'s contract (duplicate-free result, automatic
    /// densification).
    pub fn push_round<P: ShardProbe, K: EdgeKernel<P>>(
        &mut self,
        engine: &Engine,
        g: &CsrGraph,
        frontier: &mut Frontier,
        kernel: &K,
        probes: &ProbeShards<P>,
    ) -> (Frontier, PaRoundStats) {
        let (active, stats) = exchange::pa_push_round(
            engine,
            &self.pa,
            &mut self.buffers,
            &mut self.scratch,
            frontier,
            kernel,
            probes,
        );
        let mut next = Frontier::from_vertices(g, active);
        if next.wants_dense(g) {
            next.densify();
        }
        (next, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_sweep_covers_both_modes() {
        let sweep = ExecutionMode::sweep();
        assert_eq!(sweep[0], ("atomic", ExecutionMode::Atomic));
        assert_eq!(sweep[1], ("pa", ExecutionMode::PartitionAware));
        assert_eq!(ExecutionMode::default(), ExecutionMode::Atomic);
    }

    #[test]
    fn context_clamps_to_at_least_one_part() {
        let g = pp_graph::gen::path(10);
        let ctx = PaContext::new(&g, 0);
        assert_eq!(ctx.partition_graph().partition().num_parts(), 1);
        assert_eq!(ctx.partition_graph().num_remote_arcs(), 0);
    }
}
