//! The owner-computes push round (§5): traversal phase, exchange barrier,
//! delivery phase.
//!
//! **Traversal.** The frontier is bucketed by owning part; each part is one
//! schedulable unit (parts are claimed dynamically, heaviest first, using
//! the split arrays' O(1) degrees as the weight — the partitioned analogue
//! of [`crate::ops`]' degree-aware chunking). The worker holding part `t`
//! walks its frontier vertices' *local* halves applying
//! [`EdgeKernel::apply_owned`] — plain writes, since both endpoints belong
//! to `t` — and buffers every *remote* half entry into the
//! [`ExchangeBuffers`], counting one [`pp_telemetry::Probe::remote_send`]
//! where the atomic engine would have counted a CAS.
//!
//! **Delivery.** After the barrier (one [`pp_telemetry::Probe::barrier`]
//! event per round), owners drain their inbound columns — heaviest backlog
//! first — and apply each buffered update with the same `apply_owned`
//! kernel. No path in either phase issues an atomic RMW: single-writer
//! ownership is the synchronization.
//!
//! All per-round working memory (owner buckets, part weights, schedule
//! orders, activation slots) lives in a crate-private `Scratch` arena
//! owned by the run's [`super::PaContext`], so steady-state rounds
//! allocate only for the produced frontier itself — matching the exchange
//! buffers' keep-capacity discipline.

use std::cell::UnsafeCell;

use pp_graph::{PartitionAwareGraph, VertexId};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine, GRAIN};
use crate::pool::Pool;
use crate::probes::{ProbeShards, ShardProbe};
use crate::race;

use super::buffers::{ExchangeBuffers, Update};

/// Telemetry of one partition-aware push round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PaRoundStats {
    /// Updates routed through the exchange (the round's would-be atomics).
    pub remote_updates: u64,
    /// Largest single owner's inbound backlog at the exchange barrier —
    /// the skew a per-owner rebalancer would act on.
    pub buffer_peak: u64,
}

/// Reusable per-round working memory: owner buckets, part weights,
/// schedule orders, and the per-phase activation slots. Everything keeps
/// its capacity across rounds.
pub(crate) struct Scratch {
    parts: usize,
    /// Frontier vertices bucketed by owning part.
    per_part: Vec<Vec<VertexId>>,
    /// Split-arc weight of each part's bucket.
    weight: Vec<u64>,
    /// Part schedule for the traversal phase (heaviest first).
    order: Vec<usize>,
    /// Owner schedule for the delivery phase (largest backlog first).
    dorder: Vec<usize>,
    /// Per-owner inbound backlog at the barrier.
    inbound: Vec<u64>,
    /// Activation outputs: slot `c` for traversal chunk `c`, slot `p + c`
    /// for delivery chunk `c`. `UnsafeCell` so workers can append into the
    /// retained allocation instead of replacing it.
    slots: Vec<UnsafeCell<Vec<VertexId>>>,
    /// Shadow-write checker for the owner-computes discipline (a ZST
    /// no-op unless the `race-detect` feature is on).
    tracker: race::WriteTracker,
}

// SAFETY: the only interior mutability is `slots`, and each slot index is
// written exclusively by the worker holding its (exactly-once-claimed)
// chunk — the same single-writer discipline as `ExchangeBuffers`.
unsafe impl Sync for Scratch {}

impl Scratch {
    /// Empty scratch for `parts` partition parts over `n` vertices.
    pub(crate) fn new(parts: usize, n: usize) -> Self {
        Self {
            parts,
            per_part: (0..parts).map(|_| Vec::new()).collect(),
            weight: vec![0; parts],
            order: Vec::with_capacity(parts),
            dorder: Vec::with_capacity(parts),
            inbound: Vec::with_capacity(parts),
            slots: (0..2 * parts)
                .map(|_| UnsafeCell::new(Vec::new()))
                .collect(),
            tracker: race::WriteTracker::new(n),
        }
    }

    /// Clears the round-scoped contents, keeping every allocation.
    fn begin_round(&mut self) {
        for bucket in &mut self.per_part {
            bucket.clear();
        }
        self.weight.iter_mut().for_each(|w| *w = 0);
        self.order.clear();
        self.dorder.clear();
        self.inbound.clear();
        // Slots were drained when the previous round's frontier was built.
    }
}

/// Runs `chunks` units either inline on the caller (tiny rounds: a pool
/// handshake costs more than the work) or fanned out over the pool.
fn run_units(pool: &Pool, inline: bool, chunks: usize, f: &(dyn Fn(usize, usize) + Sync)) {
    if inline {
        for c in 0..chunks {
            f(0, c);
        }
    } else {
        pool.run(chunks, f);
    }
}

/// One owner-computes push round over the partition-aware split. Returns
/// the activated vertices (duplicate-free, ascending) plus the round's
/// exchange telemetry.
pub(crate) fn pa_push_round<P: ShardProbe, K: EdgeKernel<P>>(
    engine: &Engine,
    pa: &PartitionAwareGraph,
    buffers: &mut ExchangeBuffers,
    scratch: &mut Scratch,
    frontier: &mut Frontier,
    kernel: &K,
    probes: &ProbeShards<P>,
) -> (Vec<VertexId>, PaRoundStats) {
    let part = pa.partition();
    let p = part.num_parts();
    debug_assert_eq!(buffers.parts(), p);
    debug_assert_eq!(scratch.parts, p);
    scratch.begin_round();

    // Bucket the frontier by owner, weighing each part by its incident
    // split arcs (local + remote + 1 per vertex, all O(1) reads).
    let mut total_weight = 0u64;
    for &u in frontier.vertices() {
        let t = part.owner(u);
        scratch.per_part[t].push(u);
        let w = (pa.local_degree(u) + pa.remote_degree(u) + 1) as u64;
        scratch.weight[t] += w;
        total_weight += w;
    }
    let inline = total_weight <= GRAIN || engine.threads() == 1;

    // Heaviest part first: dynamic claiming then keeps the stragglers off
    // the critical path.
    scratch.order.extend(0..p);
    let weight = &scratch.weight;
    scratch.order.sort_by_key(|&t| std::cmp::Reverse(weight[t]));

    let weighted = pa.is_weighted();
    let bufref: &ExchangeBuffers = buffers;
    scratch.tracker.advance_phase();
    {
        let sc: &Scratch = scratch;
        run_units(engine.pool(), inline, p, &|worker, c| {
            let t = sc.order[c];
            let probe = probes.shard(worker);
            // Scope this thread's plain writes to part `t`'s owned range
            // for the shadow checker (no-op unless `race-detect` is on).
            let _scope = sc.tracker.scope(t, part.range(t));
            // SAFETY: chunk `c` is claimed exactly once, making this
            // worker the sole user of slot `c`.
            let active = unsafe { &mut *sc.slots[c].get() };
            for &u in &sc.per_part[t] {
                let lw = weighted.then(|| pa.local_neighbor_weights(u));
                for (k, &v) in pa.local_neighbors(u).iter().enumerate() {
                    let w = lw.map_or(1, |ws| ws[k]);
                    // Both endpoints owned by `t`: plain-write apply.
                    race::note_state_write(v);
                    if kernel.apply_owned(v, u, w, probe) {
                        active.push(v);
                    }
                }
                let rw = weighted.then(|| pa.remote_neighbor_weights(u));
                for (k, &v) in pa.remote_neighbors(u).iter().enumerate() {
                    let w = rw.map_or(1, |ws| ws[k]);
                    // Foreign-owned: buffer for the owner. One send event
                    // where the atomic engine would have counted a CAS.
                    // SAFETY: part `t` is claimed by exactly one worker
                    // this phase, making it the sole writer of row `t`.
                    let addr =
                        unsafe { bufref.push(t, part.owner(v), Update { src: u, dst: v, w }) };
                    probe.remote_send(addr, std::mem::size_of::<Update>());
                }
            }
        });
    }

    // Exchange barrier: traversal is complete on every part before any
    // owner applies inbound updates (§5's phase separation).
    probes.shard(0).barrier();
    // SAFETY: no worker is pushing or draining between the two pool rounds.
    scratch
        .inbound
        .extend((0..p).map(|o| unsafe { bufref.inbound_len(o) }));
    let stats = PaRoundStats {
        remote_updates: scratch.inbound.iter().sum(),
        buffer_peak: scratch.inbound.iter().copied().max().unwrap_or(0),
    };

    // Delivery: owners drain their columns, largest backlog first.
    scratch.dorder.extend(0..p);
    let inbound = &scratch.inbound;
    scratch
        .dorder
        .sort_by_key(|&o| std::cmp::Reverse(inbound[o]));
    let inline_delivery = stats.remote_updates <= GRAIN || engine.threads() == 1;
    scratch.tracker.advance_phase();
    {
        let sc: &Scratch = scratch;
        run_units(engine.pool(), inline_delivery, p, &|worker, c| {
            let o = sc.dorder[c];
            let probe = probes.shard(worker);
            // Scope this thread's plain writes to owner `o`'s range for
            // the shadow checker (no-op unless `race-detect` is on).
            let _scope = sc.tracker.scope(o, part.range(o));
            // SAFETY: owner `o` is claimed by exactly one worker this
            // phase; only it drains column `o`, writes part-`o` state, and
            // appends to slot `p + c`.
            unsafe {
                let active = &mut *sc.slots[p + c].get();
                bufref.drain_inbound(o, |up| {
                    race::note_state_write(up.dst);
                    if kernel.apply_owned(up.dst, up.src, up.w, probe) {
                        active.push(up.dst);
                    }
                });
            }
        });
    }

    // Owner-computes applies may report a vertex active once per inbound
    // edge (the pull-side kernels are allowed to), and the two phases can
    // both report it — fold unconditionally. Draining the slots leaves
    // their capacity in the arena for the next round.
    let mut active = Vec::new();
    for slot in &mut scratch.slots {
        active.append(slot.get_mut());
    }
    active.sort_unstable();
    active.dedup();
    (active, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::Frontier;
    use pp_graph::{gen, BlockPartition};
    use pp_telemetry::Probe;
    use pp_telemetry::{CountingProbe, NullProbe};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Reachability kernel with pull-side own-cell writes (the shape every
    /// Program's pull half has).
    struct MarkKernel<'a> {
        mark: &'a [AtomicU32],
    }

    impl<P: Probe> EdgeKernel<P> for MarkKernel<'_> {
        fn push_update(&self, _u: VertexId, v: VertexId, _w: u32, probe: &P) -> bool {
            probe.atomic_rmw(0, 4);
            self.mark[v as usize]
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        }

        fn pull_gather(&self, v: VertexId, _u: VertexId, _w: u32, probe: &P) -> bool {
            probe.write(0, 4);
            self.mark[v as usize].store(1, Ordering::Relaxed);
            true
        }

        fn pull_candidate(&self, v: VertexId, _probe: &P) -> bool {
            self.mark[v as usize].load(Ordering::Relaxed) == 0
        }

        fn pull_saturates(&self) -> bool {
            true
        }
    }

    fn reach_pa(g: &pp_graph::CsrGraph, threads: usize, parts: usize) -> (usize, u64) {
        let engine = Engine::new(threads);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let pa = PartitionAwareGraph::new(g, BlockPartition::new(g.num_vertices(), parts));
        let n = g.num_vertices();
        let mut buffers = ExchangeBuffers::new(parts);
        let mut scratch = Scratch::new(parts, n);
        let mark: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        mark[0].store(1, Ordering::Relaxed);
        let kernel = MarkKernel { mark: &mark };
        let mut frontier = Frontier::single(g, 0);
        let mut remote_total = 0u64;
        while !frontier.is_empty() {
            let (active, stats) = pa_push_round(
                &engine,
                &pa,
                &mut buffers,
                &mut scratch,
                &mut frontier,
                &kernel,
                &probes,
            );
            remote_total += stats.remote_updates;
            frontier = Frontier::from_vertices(g, active);
        }
        let merged = probes.merged();
        assert_eq!(merged.atomics, 0, "owner-computes push must not CAS");
        assert_eq!(merged.remote_sends, remote_total);
        let reached = mark
            .iter()
            .filter(|m| m.load(Ordering::Relaxed) == 1)
            .count();
        (reached, remote_total)
    }

    #[test]
    fn pa_push_reaches_the_component_for_any_part_count() {
        let g = gen::rmat(8, 6, 3);
        let engine = Engine::new(1);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(1);
        // Atomic-push oracle.
        let n = g.num_vertices();
        let mark: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        mark[0].store(1, Ordering::Relaxed);
        let kernel = MarkKernel { mark: &mark };
        let mut frontier = Frontier::single(&g, 0);
        while !frontier.is_empty() {
            frontier = engine.edge_map(
                &g,
                &mut frontier,
                pp_core::Direction::Push,
                &kernel,
                &probes,
            );
        }
        let expected = mark
            .iter()
            .filter(|m| m.load(Ordering::Relaxed) == 1)
            .count();

        for (threads, parts) in [(1, 1), (1, 4), (2, 2), (2, 4), (4, 4), (2, 7)] {
            let (reached, _) = reach_pa(&g, threads, parts);
            assert_eq!(reached, expected, "t={threads} p={parts}");
        }
    }

    #[test]
    fn single_part_never_buffers_and_multi_part_does() {
        let g = gen::rmat(7, 5, 9);
        let (_, remote_one) = reach_pa(&g, 2, 1);
        assert_eq!(remote_one, 0, "one part owns everything");
        let (_, remote_many) = reach_pa(&g, 2, 4);
        assert!(remote_many > 0, "an RMAT graph must cut across 4 parts");
    }
}
