//! # pp-engine — a parallel frontier-driven execution engine with adaptive
//! push⇄pull switching.
//!
//! The paper's central claim is that push vs. pull is a *scheduling*
//! decision: the same algorithm, two schedules, different synchronization
//! and communication profiles. This crate turns that claim into a runtime:
//!
//! * [`pool::Pool`] — a persistent worker pool with dynamic chunk claiming,
//!   so skewed degree distributions do not serialize a round behind one
//!   overloaded thread;
//! * [`frontier::Frontier`] — the active-vertex set, sparse (vertex list)
//!   or dense (bitmap), with automatic conversion and the `|F|`/`|E_F|`
//!   statistics direction switching needs;
//! * [`ops::Engine`] — `edge_map`/`vertex_map` operators generic over a
//!   [`pp_core::Direction`] and an [`ops::EdgeKernel`], with degree-aware
//!   work partitioning;
//! * [`policy::DirectionPolicy`] — per-round push⇄pull selection,
//!   generalizing `pp_core::strategies::SwitchController` into
//!   Beamer-style direction optimization driven by frontier edge counts;
//! * [`probes::ProbeShards`] — per-worker telemetry shards that merge back
//!   into `pp-telemetry`'s [`pp_telemetry::EventCounts`], so Table-1 style
//!   event totals reconcile without the instrumentation itself becoming
//!   the contention;
//! * [`algo`] — BFS, PageRank, and Δ-stepping SSSP ported onto the engine,
//!   with the sequential `pp-core` implementations as oracles.
//!
//! ## Quickstart
//!
//! ```
//! use pp_engine::{algo, DirectionPolicy, Engine, ProbeShards};
//! use pp_graph::datasets::{Dataset, Scale};
//! use pp_telemetry::NullProbe;
//!
//! let g = Dataset::Orc.generate(Scale::Test);
//! let engine = Engine::new(4);
//! let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
//! let r = algo::bfs::bfs(&engine, &g, 0, DirectionPolicy::adaptive(), &probes);
//! assert!(r.reached() > 0);
//! // The adaptive policy records which direction each round ran in:
//! for round in &r.rounds {
//!     let _ = (round.frontier, round.dir);
//! }
//! ```

pub mod algo;
pub mod frontier;
pub mod ops;
pub mod policy;
pub mod pool;
pub mod probes;

pub use frontier::Frontier;
pub use ops::{EdgeKernel, Engine};
pub use policy::{AdaptiveSwitch, DirectionPolicy};
pub use pool::Pool;
pub use probes::{ProbeShards, ShardProbe};
