//! # pp-engine — a parallel frontier runtime with a `Program` vertex-program
//! API and adaptive push⇄pull switching.
//!
//! The paper's central claim is that push vs. pull is a *scheduling*
//! decision: the same algorithm, two schedules, different synchronization
//! and communication profiles. This crate turns the claim into a type
//! split:
//!
//! * a [`Program`] is what an algorithm **is** — per-vertex state, a
//!   `push_update`/`pull_gather` kernel pair sharing one update semantics
//!   ([`EdgeKernel`]), frontier seeding/reseeding, and the convergence
//!   predicate;
//! * a [`Runner`] is what a **run** is — the engine, the
//!   [`DirectionPolicy`], the probe shards, and the one shared round loop;
//!   it returns the program's output inside a [`Run`] together with a
//!   [`RunReport`] of per-round direction/frontier/edge statistics.
//!
//! Under the hood: [`pool::Pool`] (persistent workers, dynamic chunk
//! claiming), [`frontier::Frontier`] (sparse↔dense active set with lazily
//! cached `|E_F|`), [`ops::Engine`] (`edge_map`/`vertex_map` operators,
//! degree-aware partitioning), [`probes::ProbeShards`] (per-worker
//! telemetry that merges into [`pp_telemetry::EventCounts`]).
//!
//! Ten algorithms ship as programs in [`algo`] — the paper's full workload
//! table: BFS (§3.3), PageRank (§3.1), Δ-stepping SSSP (§3.4), connected
//! components, k-core decomposition, community label propagation,
//! Boman-style coloring (§5), triangle counting (§3.2, Algorithm 2),
//! Boruvka MST (§3.7, Algorithm 7), and Brandes betweenness centrality
//! (§3.5, Algorithm 5) — each oracle-checked against its sequential
//! `pp-core` twin under every policy × execution-mode schedule.
//!
//! ## Per-phase kernel lifecycle
//!
//! Multi-kernel algorithms widen the frontier-shaped contract through two
//! mechanisms (see [`program`]): a *kernel state machine* — the program's
//! edge kernels dispatch on internal state advanced between rounds (BC's
//! forward σ-counting vs. backward δ-accumulation sweeps) — and
//! [`Program::phase_kernel`], which lets a phase declare itself a
//! [`PhaseKernel::VertexStep`]: the runner runs `begin_round` (where the
//! program does frontier-wide vertex work) and skips edge traversal. MST
//! uses both: its FM/BMT/M phases cycle an edge sweep and two vertex
//! steps, so `RunReport::phase_rounds` exposes Figure 4's per-phase
//! structure directly.
//!
//! ## Quickstart
//!
//! ```
//! use pp_engine::{algo::bfs::BfsProgram, DirectionPolicy, Engine, ProbeShards, Runner};
//! use pp_graph::datasets::{Dataset, Scale};
//! use pp_telemetry::NullProbe;
//!
//! let g = Dataset::Orc.generate(Scale::Test);
//! let engine = Engine::new(4);
//! let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
//!
//! // A Runner owns the schedule; a Program owns the algorithm.
//! let run = Runner::new(&engine, &probes)
//!     .policy(DirectionPolicy::adaptive())
//!     .run(&g, BfsProgram::new(&g, 0));
//! let (parent, level) = run.output;
//! assert_eq!(parent[0], 0, "the root is its own parent");
//! assert!(level.iter().filter(|&&l| l != u32::MAX).count() > 1);
//! // The unified report records which direction each round ran in:
//! for round in &run.report.rounds {
//!     let _ = (round.phase, round.frontier, round.frontier_edges, round.dir);
//! }
//! assert!(run.report.switched() || run.report.pull_rounds() == 0);
//! ```
//!
//! Each algorithm also keeps a one-call convenience wrapper
//! (`algo::bfs::bfs`, `algo::pagerank::pagerank`, …) that builds the
//! program, runs it, and reshapes the output.
//!
//! ## Partition-aware execution (§5)
//!
//! Push's per-edge atomics are a *scheduling* artifact too: they exist
//! because any thread may target any vertex. [`Runner::mode`] with
//! [`ExecutionMode::PartitionAware`] removes them. The run binds one
//! [`pp_graph::BlockPartition`] part to each engine thread and builds the
//! paper's `2n + 2m`-cell split representation
//! ([`pp_graph::PartitionAwareGraph`]: per-vertex adjacency divided into
//! same-owner and foreign-owner halves). Each push round then has two
//! phases ([`partitioned::exchange`]):
//!
//! 1. **Traversal** — the worker owning part `t` walks its frontier
//!    vertices: local targets get the update applied immediately with
//!    plain writes ([`EdgeKernel::apply_owned`]); remote targets are
//!    buffered into a per-(worker × owner) queue
//!    ([`partitioned::ExchangeBuffers`]), counting one
//!    `Probe::remote_send` where the atomic engine counted a CAS.
//! 2. **Delivery** — after one barrier, every owner drains its inbound
//!    queues and applies the buffered updates to the vertices it owns,
//!    again with plain writes.
//!
//! No atomic RMW is issued anywhere on the push path; `RunReport` rounds
//! carry the exchange volume (`remote_updates`) and occupancy skew
//! (`buffer_peak`). All ten programs run unmodified in either mode —
//! delivery applies updates through [`EdgeKernel::apply_owned`], which
//! defaults to each program's atomic-free pull kernel (the contract
//! already requires both kernels to encode one update semantics; BC
//! overrides it because its σ accumulation needs every delivered parent,
//! not a candidate-gated first one). Pull rounds are untouched, so any
//! [`DirectionPolicy`] composes with either mode.
//!
//! ## Migrating from the pre-`Program` API (PR 1)
//!
//! * `algo::bfs::bfs(...)` still exists; its result now carries the
//!   unified `report: RunReport` instead of ad-hoc `rounds: Vec<ParRound>`
//!   — read `r.report.rounds` (fields `round`, `phase`, `dir`, `frontier`,
//!   `frontier_edges`).
//! * `algo::sssp::sssp_delta(...)` unchanged in shape; the per-epoch trace
//!   is now derived from the report's phases.
//! * `EdgeKernel::push`/`pull` were renamed `push_update`/`pull_gather`;
//!   hand-rolled round loops over `Engine::edge_map` should become
//!   `Program` impls — compare `algo/bfs.rs` before/after for the recipe.
//! * `Frontier::edge_count()` now takes the graph
//!   (`edge_count(&g)`) and is lazily computed + cached instead of eagerly
//!   summed at construction.
//!
//! ## Migrating to `ExecutionMode` (PR 3)
//!
//! * `Runner` gains a `.mode(ExecutionMode)` builder step. Existing code
//!   is unchanged: the default is [`ExecutionMode::Atomic`], the exact
//!   pre-PR behaviour. Opt into owner-computes push with
//!   `.mode(ExecutionMode::PartitionAware)` — no `Program` changes needed.
//! * `RoundStat` gained `remote_updates`/`buffer_peak` fields (zero under
//!   `Atomic`); struct-literal constructions must add them.
//! * [`EdgeKernel`] gained the defaulted `apply_owned` hook; override it
//!   only if a program can apply an owned update cheaper than its
//!   candidate-gated pull kernel — or if the candidate gate would drop
//!   repeat deliveries a kernel needs (BC's σ accumulation overrides it
//!   for exactly that reason; see `algo/bc.rs`).
//!
//! ## Migrating to the per-phase lifecycle (PR 4)
//!
//! * [`Program::phase_kernel`] is defaulted (`PhaseKernel::EdgeMap`):
//!   existing programs are unchanged.
//! * `RunReport::phases` now counts the phases that executed at least one
//!   round, so a zero-round run reports 0 (previously a phantom 1),
//!   matching `RunReport::default()`.
//! * `Frontier::insert` is amortized O(1): the sparse representation keeps
//!   a membership bitmap once inserts begin (incremental frontier builds
//!   used to be quadratic in the frontier size).
//!
//! ## Ingestion and external drivers (PR 5)
//!
//! Two modules make the engine drivable from outside the workspace's own
//! experiments:
//!
//! * [`ingest`] parses on-disk edge lists on the engine pool —
//!   `pp_graph::io`'s byte-level shard stages scheduled as one
//!   dynamically-claimed chunk per shard, oracle-identical to the
//!   sequential reader;
//! * [`registry`] is the name → [`Program`] dispatch table: all ten
//!   algorithms runnable by string name under one
//!   [`registry::RunConfig`] (policy × mode × threads), returning the
//!   unified [`RunReport`] plus an output digest. The `ppgraph` CLI in
//!   `pp-bench` (`gen` / `convert` / `stats` / `run`) is built on exactly
//!   these two modules plus `pp_graph::snapshot`'s binary `.ppg` format.
//!
//! ## Run-wide observability (PR 6)
//!
//! The §6 measurement discipline now covers *time* as well as events,
//! opt-in per run via [`pp_telemetry::MetricsLevel`]:
//!
//! * `Runner` gains `.metrics(MetricsLevel)` (and [`registry::RunConfig`]
//!   a `collect` field). The default is `Off` — the exact pre-PR path,
//!   producing a report identical to the legacy one.
//! * `RoundStat` gained `start_ns`/`duration_ns` and an optional
//!   [`policy::PolicyDecision`] record (the observed Beamer share, the
//!   hysteresis threshold it was compared against, and whether the
//!   direction switched) — struct-literal constructions must add them.
//! * `RunReport` gained `elapsed_ns`, per-worker [`pp_telemetry::timing::
//!   WorkerLap`] ledgers filled by [`Pool`]'s lap accounting, and (at
//!   `Trace` level) the per-round × per-worker busy matrix;
//!   [`RunReport::chrome_trace`] maps a run onto Chrome trace-event JSON
//!   (`chrome://tracing` / Perfetto) with one track per pool worker.
//! * `RoundStat`/`RunReport` lost their `Eq` derives (`PolicyDecision`
//!   holds `f64` shares); `PartialEq` comparisons are unchanged.
//! * The registry is generic over the probe type:
//!   [`registry::all_counting`]/[`registry::find_counting`] expose the
//!   same ten algorithms over [`pp_telemetry::CountingProbe`], so one run
//!   yields timing *and* Table-1 event counts (`ppgraph run --metrics`).
//!
//! ## Checked invariants (PR 9)
//!
//! The engine's correctness rests on contracts the compiler cannot see.
//! They are stated here once and enforced mechanically — statically by
//! the workspace's `pp-audit` pass (CI-gating; see the repository
//! README's "Correctness tooling") and dynamically by the `race-detect`
//! feature:
//!
//! * **Single-writer ownership (§5).** During a partition-aware phase,
//!   vertex-state slot `v` is plain-written only by the worker that
//!   claimed `v`'s part; phases are separated by the exchange barrier.
//!   Every `unsafe` block in [`partitioned`] cites this contract in its
//!   `// SAFETY:` comment, and [`race::note_state_write`] checks it per
//!   write when the `race-detect` feature is on ([`race`] is a set of
//!   empty inline bodies otherwise).
//! * **Justified orderings.** Every atomic that is not a `Relaxed`
//!   statistics counter carries an adjacent `// ORDERING:` comment
//!   naming the acquire/release pairing it relies on; `pp-audit` flags
//!   unannotated sites, so a weakened ordering cannot slip in silently.
//! * **Zero-clock `MetricsLevel::Off`.** The engine never reads a clock
//!   directly: all timing goes through [`pp_telemetry::timing::Clock`],
//!   constructed only when a run opted into metrics. `pp-audit` rejects
//!   `Instant::now` anywhere outside `pp-telemetry`.
//! * **Contained spawning.** Worker threads come from [`pool::Pool`]
//!   alone (the serve crate's accept loop is the one other spawn site);
//!   nothing else may create threads, keeping lap accounting and the
//!   barrier discipline total over all workers.
//!
//! ## Batched multi-source execution (PR 10)
//!
//! A run can now carry a *batch* of up to 64 sources end to end
//! ([`algo::msbfs`]):
//!
//! * **Lane model.** An [`algo::msbfs::SourceBatch`] maps each distinct
//!   source to one bit of a `u64` *lane mask*; the program keeps three
//!   mask words per vertex (`visit` — lanes that reached it, `cur` — the
//!   round's frontier lanes, `visit_next` — lanes arriving this round).
//!   One push `fetch_or` (or one owner-computes buffered merge — the
//!   PartitionAware path stays zero-RMW because `cur[u]` is a
//!   round-immutable snapshot, exactly the `apply_owned` timing contract)
//!   advances up to 64 frontiers per traversed edge. The
//!   scheduler-visible [`Frontier`] is the per-lane union, so any
//!   [`DirectionPolicy`] steers on the batch-aggregate `|F|`/`|E_F|`
//!   unchanged.
//! * **Reporting.** [`RoundStat`] gained `lanes_active` and `RunReport` a
//!   per-source axis ([`SourceStat`]: `source`, `rounds_active`, `depth`),
//!   filled through two defaulted [`Program`] hooks
//!   ([`Program::lanes_active`], [`Program::source_stats`]) — single-source
//!   programs report the exact pre-batch shape. Chrome traces carry
//!   `lanes_active` as a round arg when non-zero.
//! * **Dispatch.** [`registry::RunConfig`] gained `sources: Vec<u32>`
//!   (deduplicated, validated against the 64-lane width); `bfs` with
//!   multiple sources — or its `msbfs` alias — runs the batched program,
//!   with a digest concatenated from per-source digests, each bit-equal
//!   to its single-source run.
//! * **BC waves.** Brandes betweenness drives its forward σ phase through
//!   the same batched traversal in waves of ≤ 64 sources
//!   (`algo::bc::BcProgram`), one traversal per wave instead of one per
//!   source; backward dependency accumulation stays per-lane.

pub mod algo;
pub mod frontier;
pub mod ingest;
pub mod ops;
pub mod partitioned;
pub mod policy;
pub mod pool;
pub mod probes;
pub mod program;
pub mod race;
pub mod registry;
pub mod report;
pub mod runner;

pub use frontier::Frontier;
pub use ops::{EdgeKernel, Engine};
pub use partitioned::{ExecutionMode, PaContext};
pub use policy::{AdaptiveSwitch, DirectionPolicy, PolicyDecision};
pub use pool::Pool;
pub use probes::{ProbeShards, ShardProbe};
pub use program::{PhaseKernel, Program, RoundCtx};
pub use report::{RoundStat, RunReport, SourceStat};
pub use runner::{Run, Runner};
