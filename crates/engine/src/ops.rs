//! The engine's operators: `edge_map` and `vertex_map` over a [`Frontier`],
//! generic over direction and probe — the Ligra-style core of `pp-engine`.
//!
//! Work partitioning is *degree-aware*: chunks are cut so each carries
//! roughly the same number of arcs (not vertices), and the pool's dynamic
//! chunk claiming absorbs whatever imbalance remains. Each chunk writes its
//! discoveries into its own slot, so the produced frontier's order depends
//! only on the chunk partition — not on thread scheduling.
//!
//! Algorithms do not usually call these operators directly: they implement
//! [`crate::program::Program`] (whose supertrait is [`EdgeKernel`]) and let
//! [`crate::runner::Runner`] drive the rounds.

use pp_core::sync::SyncSlice;
use pp_core::Direction;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::pool::Pool;
use crate::probes::{ProbeShards, ShardProbe};

/// How an algorithm reacts to one traversed edge, in either direction — the
/// update half of a [`crate::program::Program`].
///
/// The two methods are the engine's version of the paper's dichotomy
/// (§3.8), and must encode *one* update semantics: `push_update` may touch
/// cells of a vertex the calling thread does not own and must synchronize
/// (CAS, lock, float-CAS); `pull_gather` may only write cells of `v`, which
/// the chunk partition assigns to exactly one thread, and therefore needs
/// no synchronization.
pub trait EdgeKernel<P: Probe>: Sync {
    /// Frontier vertex `u` updates its neighbor `v` over an edge of weight
    /// `w` (1 on unweighted graphs). Returns `true` iff `v` just became
    /// active for the next frontier. Must be thread-safe: many `u`s may
    /// push into the same `v` concurrently.
    fn push_update(&self, u: VertexId, v: VertexId, w: Weight, probe: &P) -> bool;

    /// Vertex `v` gathers from frontier neighbor `u`. Only `v`'s own cells
    /// may be written — the engine guarantees a single thread processes
    /// `v`. Returns `true` iff `v` became active.
    fn pull_gather(&self, v: VertexId, u: VertexId, w: Weight, probe: &P) -> bool;

    /// Whether `v` should scan its neighbors at all in a pull round
    /// (e.g. "still unvisited" for BFS). Default: every vertex scans.
    fn pull_candidate(&self, v: VertexId, probe: &P) -> bool {
        let _ = (v, probe);
        true
    }

    /// Whether a successful `pull_gather` ends `v`'s scan (BFS needs any
    /// one frontier parent; PageRank needs them all). Default: scan
    /// everything.
    fn pull_saturates(&self) -> bool {
        false
    }

    /// Whether `push_update` can report the same vertex active more than
    /// once in a round (CAS-min kernels: every improvement returns `true`).
    /// When set, `edge_map` folds the duplicates before building the next
    /// frontier. Default: activation is exactly-once (CAS-claim kernels).
    fn may_activate_twice(&self) -> bool {
        false
    }

    /// Owner-computes apply (§5 partition-awareness): frontier vertex `u`
    /// updates `v`, executed *by `v`'s owning thread* — so plain writes
    /// suffice where `push_update` would synchronize. Because both kernels
    /// encode one update semantics, the default delegates to the
    /// already-atomic-free pull side, gated by
    /// [`EdgeKernel::pull_candidate`] (which is what makes saturating
    /// kernels like BFS exactly-once here, just as in a pull round).
    /// Returns `true` iff `v` became active; the partitioned engine folds
    /// repeats unconditionally.
    ///
    /// **Timing contract.** A buffered remote update carries only
    /// `(u, v, w)`; for those, this apply runs in the *delivery* phase,
    /// after the exchange barrier — so any cell of `u` the kernel reads is
    /// read *then*, possibly newer than when the edge was buffered (other
    /// owners apply their own inbound updates concurrently, through
    /// atomic cells). The kernel must tolerate that: source reads must be
    /// of monotone state, where a fresher value is still a valid update
    /// (BFS parents, CC labels, SSSP distances), or of round-immutable
    /// snapshots (PageRank's previous ranks, label-prop's previous
    /// labels). Every shipped `Program` satisfies this; a kernel that
    /// mutates source-vertex state mid-round in a non-monotone way must
    /// override `apply_owned` (e.g. to ignore source state entirely).
    fn apply_owned(&self, v: VertexId, u: VertexId, w: Weight, probe: &P) -> bool {
        self.pull_candidate(v, probe) && self.pull_gather(v, u, w, probe)
    }
}

/// The execution engine: a persistent pool plus the frontier operators.
pub struct Engine {
    pool: Pool,
}

/// Chunks per thread: enough slack for dynamic claiming to balance skewed
/// degree distributions without drowning in per-chunk overhead.
const CHUNKS_PER_THREAD: usize = 4;

/// Minimum weight (arcs + vertices) a chunk must carry before a round is
/// worth fanning out. Rounds below one grain run inline on the caller —
/// critical for high-diameter graphs whose BFS/SSSP rounds are tiny (a
/// pool handshake costs more than relaxing a dozen edges). Shared with the
/// partitioned engine, which applies the same inline cutoff to its phases.
pub(crate) const GRAIN: u64 = 4096;

impl Engine {
    /// An engine over `threads` threads (0 = hardware parallelism).
    pub fn new(threads: usize) -> Self {
        Self {
            pool: Pool::new(threads),
        }
    }

    /// Total worker threads (including the calling thread).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The underlying pool, for algorithms with bespoke rounds.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    fn target_chunks(&self) -> usize {
        self.pool.threads() * CHUNKS_PER_THREAD
    }

    /// Applies the kernel to every edge incident to the frontier, in the
    /// given direction, and returns the next frontier.
    ///
    /// In push direction the frontier is consumed sparse (its vertices are
    /// the work list); in pull direction it is consumed dense (a bitmap
    /// membership oracle) and every [`EdgeKernel::pull_candidate`] vertex
    /// scans for active neighbors. The produced frontier is duplicate-free
    /// (see [`EdgeKernel::may_activate_twice`]) and is densified
    /// automatically when it crosses the Ligra-style
    /// [`Frontier::wants_dense`] threshold.
    pub fn edge_map<P: ShardProbe, K: EdgeKernel<P>>(
        &self,
        g: &CsrGraph,
        frontier: &mut Frontier,
        dir: Direction,
        kernel: &K,
        probes: &ProbeShards<P>,
    ) -> Frontier {
        let mut active = match dir {
            Direction::Push => self.edge_map_push(g, frontier, kernel, probes),
            Direction::Pull => self.edge_map_pull(g, frontier, kernel, probes),
        };
        // Pull activates each vertex at most once (one thread owns it); a
        // push kernel may report repeat activations, which would skew the
        // frontier's |F|/|E_F| statistics — fold them here.
        if dir == Direction::Push && kernel.may_activate_twice() {
            active.sort_unstable();
            active.dedup();
        }
        let mut next = Frontier::from_vertices(g, active);
        // Automatic densification: store a heavy frontier as a bitmap now,
        // while it is hot, rather than at its next (likely dense) use.
        if next.wants_dense(g) {
            next.densify();
        }
        next
    }

    fn edge_map_push<P: ShardProbe, K: EdgeKernel<P>>(
        &self,
        g: &CsrGraph,
        frontier: &mut Frontier,
        kernel: &K,
        probes: &ProbeShards<P>,
    ) -> Vec<VertexId> {
        // Per-index weight degree(v) + 1 sums to exactly |E_F| + |F|, which
        // the frontier caches after the first query — no extra pre-pass.
        let total = frontier.edge_count(g) + frontier.len() as u64;
        let verts = frontier.vertices();
        let cuts = chunk_by_weight(verts.len(), self.target_chunks(), total, |i| {
            g.degree(verts[i]) as u64 + 1
        });
        let weighted = g.is_weighted();
        let mut slots: Vec<Vec<VertexId>> = vec![Vec::new(); cuts.len().saturating_sub(1)];
        {
            let out = SyncSlice::new(&mut slots);
            self.pool.run(cuts.len().saturating_sub(1), &|worker, c| {
                let probe = probes.shard(worker);
                let mut local = Vec::new();
                for &u in &verts[cuts[c]..cuts[c + 1]] {
                    if weighted {
                        for (v, w) in g.weighted_neighbors(u) {
                            if kernel.push_update(u, v, w, probe) {
                                local.push(v);
                            }
                        }
                    } else {
                        for &v in g.neighbors(u) {
                            if kernel.push_update(u, v, 1, probe) {
                                local.push(v);
                            }
                        }
                    }
                }
                // SAFETY: chunk indices are claimed exactly once, so slot
                // `c` has a single writer.
                unsafe { out.write(c, local) };
            });
        }
        slots.concat()
    }

    fn edge_map_pull<P: ShardProbe, K: EdgeKernel<P>>(
        &self,
        g: &CsrGraph,
        frontier: &mut Frontier,
        kernel: &K,
        probes: &ProbeShards<P>,
    ) -> Vec<VertexId> {
        let bits = frontier.bits();
        let cuts = dense_cuts(g, self.target_chunks());
        let weighted = g.is_weighted();
        let saturates = kernel.pull_saturates();
        let mut slots: Vec<Vec<VertexId>> = vec![Vec::new(); cuts.len().saturating_sub(1)];
        {
            let out = SyncSlice::new(&mut slots);
            self.pool.run(cuts.len().saturating_sub(1), &|worker, c| {
                let probe = probes.shard(worker);
                let mut local = Vec::new();
                let scan = |v: VertexId, u: VertexId, w: Weight| -> bool {
                    // R: read conflict on the frontier bit (§4.3) — many
                    // pullers test the same word concurrently.
                    probe.read(addr_of_index(bits, u as usize / 64), 8);
                    probe.branch_cond();
                    if bits[u as usize / 64] >> (u as usize % 64) & 1 == 1 {
                        kernel.pull_gather(v, u, w, probe)
                    } else {
                        false
                    }
                };
                for v in cuts[c] as VertexId..cuts[c + 1] as VertexId {
                    if !kernel.pull_candidate(v, probe) {
                        continue;
                    }
                    let mut active = false;
                    if weighted {
                        for (u, w) in g.weighted_neighbors(v) {
                            if scan(v, u, w) {
                                active = true;
                                if saturates {
                                    break;
                                }
                            }
                        }
                    } else {
                        for &u in g.neighbors(v) {
                            if scan(v, u, 1) {
                                active = true;
                                if saturates {
                                    break;
                                }
                            }
                        }
                    }
                    if active {
                        local.push(v);
                    }
                }
                // SAFETY: single writer per chunk slot (see push).
                unsafe { out.write(c, local) };
            });
        }
        slots.concat()
    }

    /// Applies `f` to every frontier vertex in parallel (degree-aware
    /// chunks). `f` may write only cells owned by the vertex it is handed.
    pub fn vertex_map<P: ShardProbe>(
        &self,
        g: &CsrGraph,
        frontier: &mut Frontier,
        probes: &ProbeShards<P>,
        f: impl Fn(VertexId, &P) + Sync,
    ) {
        let total = frontier.edge_count(g) + frontier.len() as u64;
        let verts = frontier.vertices();
        let cuts = chunk_by_weight(verts.len(), self.target_chunks(), total, |i| {
            g.degree(verts[i]) as u64 + 1
        });
        self.pool.run(cuts.len().saturating_sub(1), &|worker, c| {
            let probe = probes.shard(worker);
            for &v in &verts[cuts[c]..cuts[c + 1]] {
                f(v, probe);
            }
        });
    }

    /// Applies `f` to every vertex of the graph in parallel (degree-aware
    /// chunks) — the dense all-vertices round iterative algorithms use.
    pub fn map_vertices<P: ShardProbe>(
        &self,
        g: &CsrGraph,
        probes: &ProbeShards<P>,
        f: impl Fn(VertexId, &P) + Sync,
    ) {
        let cuts = dense_cuts(g, self.target_chunks());
        self.pool.run(cuts.len().saturating_sub(1), &|worker, c| {
            let probe = probes.shard(worker);
            for v in cuts[c] as VertexId..cuts[c + 1] as VertexId {
                f(v, probe);
            }
        });
    }
}

/// Degree-aware cuts over all vertices of `g`: total weight is `m + n` by
/// construction, so no pre-pass over the degrees is needed.
fn dense_cuts(g: &CsrGraph, chunks: usize) -> Vec<usize> {
    let total = g.num_arcs() as u64 + g.num_vertices() as u64;
    chunk_by_weight(g.num_vertices(), chunks, total, |v| {
        g.degree(v as VertexId) as u64 + 1
    })
}

/// Cuts `0..len` into at most `chunks` contiguous ranges of roughly equal
/// total `weight` (whose sum over `0..len` the caller supplies as `total`),
/// never cutting below [`GRAIN`] weight per chunk. Returns the cut points
/// (`cuts[c]..cuts[c+1]` is chunk `c`); always at least one chunk when
/// `len > 0`.
fn chunk_by_weight(
    len: usize,
    chunks: usize,
    total: u64,
    weight: impl Fn(usize) -> u64,
) -> Vec<usize> {
    if len == 0 {
        return vec![0, 0];
    }
    let chunks = chunks
        .min(usize::try_from(total / GRAIN).unwrap_or(usize::MAX).max(1))
        .clamp(1, len);
    if chunks == 1 {
        return vec![0, len];
    }
    let target = total.div_ceil(chunks as u64).max(1);
    let mut cuts = Vec::with_capacity(chunks + 1);
    cuts.push(0);
    let mut acc = 0u64;
    for i in 0..len {
        acc += weight(i);
        if acc >= target && cuts.len() < chunks && i + 1 < len {
            cuts.push(i + 1);
            acc = 0;
        }
    }
    cuts.push(len);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;
    use pp_telemetry::{CountingProbe, NullProbe};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Reachability kernel: claim unvisited neighbors with a CAS.
    struct MarkKernel<'a> {
        mark: &'a [AtomicU32],
    }

    impl<P: Probe> EdgeKernel<P> for MarkKernel<'_> {
        fn push_update(&self, _u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
            probe.atomic_rmw(addr_of_index(self.mark, v as usize), 4);
            self.mark[v as usize]
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        }

        fn pull_gather(&self, v: VertexId, _u: VertexId, _w: Weight, probe: &P) -> bool {
            probe.write(addr_of_index(self.mark, v as usize), 4);
            self.mark[v as usize].store(1, Ordering::Relaxed);
            true
        }

        fn pull_candidate(&self, v: VertexId, _probe: &P) -> bool {
            self.mark[v as usize].load(Ordering::Relaxed) == 0
        }

        fn pull_saturates(&self) -> bool {
            true
        }
    }

    fn reach(g: &CsrGraph, dir: Direction, threads: usize) -> usize {
        let engine = Engine::new(threads);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let n = g.num_vertices();
        let mark: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        mark[0].store(1, Ordering::Relaxed);
        let kernel = MarkKernel { mark: &mark };
        let mut frontier = Frontier::single(g, 0);
        while !frontier.is_empty() {
            frontier = engine.edge_map(g, &mut frontier, dir, &kernel, &probes);
        }
        mark.iter()
            .filter(|m| m.load(Ordering::Relaxed) == 1)
            .count()
    }

    #[test]
    fn edge_map_reaches_the_component_in_both_directions() {
        let g = gen::rmat(8, 6, 3);
        let expected = reach(&g, Direction::Push, 1);
        for threads in [1, 2, 4] {
            assert_eq!(reach(&g, Direction::Push, threads), expected);
            assert_eq!(reach(&g, Direction::Pull, threads), expected);
        }
    }

    #[test]
    fn vertex_map_touches_each_frontier_vertex_once() {
        let g = gen::path(300);
        let engine = Engine::new(3);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let hits: Vec<AtomicU32> = (0..300).map(|_| AtomicU32::new(0)).collect();
        let mut f = Frontier::from_vertices(&g, (0..300).step_by(3).collect());
        engine.vertex_map(&g, &mut f, &probes, |v, _| {
            hits[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (v, hit) in hits.iter().enumerate() {
            let expected = u32::from(v % 3 == 0);
            assert_eq!(hit.load(Ordering::Relaxed), expected, "vertex {v}");
        }
    }

    #[test]
    fn map_vertices_covers_every_vertex() {
        let g = gen::rmat(7, 4, 9);
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let hits: Vec<AtomicU32> = (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect();
        engine.map_vertices(&g, &probes, |v, _| {
            hits[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_cuts_partition_the_index_space() {
        for (len, chunks) in [(0usize, 4), (1, 4), (10, 3), (1000, 16), (5, 100)] {
            let cuts = chunk_by_weight(len, chunks, len as u64, |_| 1);
            assert_eq!(*cuts.first().unwrap(), 0);
            assert_eq!(*cuts.last().unwrap(), len);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn chunk_cuts_balance_by_weight() {
        // One heavy item at index 0, many light ones: the heavy item should
        // get (nearly) its own chunk.
        let w = |i: usize| if i == 0 { 100_000 } else { 100 };
        let cuts = chunk_by_weight(101, 4, 100_000 + 100 * 100, w);
        assert_eq!(cuts[1], 1, "heavy head isolated");
    }

    #[test]
    fn tiny_rounds_collapse_to_one_inline_chunk() {
        // Total weight below one grain: no fan-out, a single chunk.
        let cuts = chunk_by_weight(100, 16, 100, |_| 1);
        assert_eq!(cuts, vec![0, 100]);
    }

    #[test]
    fn probe_counts_reconcile_across_shard_layouts() {
        // The same pull traversal counts the same events whether probes are
        // sharded per worker or funneled through one shared probe.
        let g = gen::rmat(7, 4, 11);
        let n = g.num_vertices();

        let run = |threads: usize| {
            let engine = Engine::new(threads);
            let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
            let mark: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            mark[0].store(1, Ordering::Relaxed);
            let kernel = MarkKernel { mark: &mark };
            let mut frontier = Frontier::single(&g, 0);
            while !frontier.is_empty() {
                frontier = engine.edge_map(&g, &mut frontier, Direction::Pull, &kernel, &probes);
            }
            probes.merged()
        };

        let single = run(1);
        let multi = run(4);
        assert_eq!(single, multi, "pull rounds are deterministic");
        assert!(single.reads > 0 && single.writes > 0);
    }
}
