//! Boman-style graph coloring as a [`Program`] (§3.6/§4.6).
//!
//! Each round plays Boman's two phases on the engine's primitives: the
//! frontier is the set of vertices needing (re)color;
//! [`Program::begin_round`] greedily colors them (the speculative parallel
//! phase — within a chunk the scan is sequential and reads fresh colors,
//! exactly Boman's per-partition greedy; across chunks reads race), and
//! the edge kernels are the conflict detection — for a same-color edge
//! inside the frontier, the *higher* id resolves to recolor, so the lower
//! endpoint stabilizes and termination is guaranteed in ≤ n rounds. The
//! push update scatters the recolor request to the remote offender's flag
//! (atomic claim, §4.6); the pull gather schedules *itself* with an
//! own-cell write — Algorithm 6's lines 16 vs 18, as one kernel pair.
//!
//! Colors stay within the greedy bound (≤ Δ + 1): every pick is the
//! smallest color absent from the observed neighborhood.
//! [`pp_core::coloring::is_proper_coloring`] is the oracle.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use pp_core::coloring::NO_COLOR;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::Program;
use crate::report::RunReport;
use crate::runner::Runner;

/// Result of an engine coloring run.
#[derive(Clone, Debug)]
pub struct ParColoringResult {
    /// Per-vertex colors (dense from 0, ≤ max-degree + 1 of them).
    pub colors: Vec<u32>,
    /// Per-round direction/frontier/edge statistics (round = one
    /// speculative color + conflict-detect iteration).
    pub report: RunReport,
}

impl ParColoringResult {
    /// Number of distinct colors used.
    pub fn num_colors(&self) -> usize {
        self.colors
            .iter()
            .filter(|&&c| c != NO_COLOR)
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Speculative greedy coloring as a vertex program.
pub struct ColoringProgram {
    colors: Vec<AtomicU32>,
    /// Push-side recolor claims (exactly-once activation).
    flagged: Vec<AtomicBool>,
}

impl ColoringProgram {
    /// A program coloring every vertex of `g`.
    pub fn new(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        Self {
            colors: (0..n).map(|_| AtomicU32::new(NO_COLOR)).collect(),
            flagged: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// The smallest color not present in `v`'s observed neighborhood.
    /// Same-chunk neighbors are read fresh (the chunk scan is sequential);
    /// concurrently recolored cross-chunk neighbors may be read stale —
    /// the conflict kernels exist to catch exactly those.
    fn smallest_free(&self, g: &CsrGraph, v: VertexId) -> u32 {
        // Greedy never needs more than deg(v) + 1 candidates.
        let words = g.degree(v) / 64 + 1;
        let mut banned = vec![0u64; words];
        let cap = (words * 64) as u32;
        for &u in g.neighbors(v) {
            let c = self.colors[u as usize].load(Ordering::Relaxed);
            if c != NO_COLOR && c < cap {
                banned[(c / 64) as usize] |= 1 << (c % 64);
            }
        }
        for (i, &b) in banned.iter().enumerate() {
            if b != u64::MAX {
                return i as u32 * 64 + (!b).trailing_zeros();
            }
        }
        cap
    }
}

impl<P: Probe> EdgeKernel<P> for ColoringProgram {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        probe.read(addr_of_index(&self.colors, v as usize), 4);
        probe.branch_cond();
        // Conflicts exist only between same-round colorings (the snapshot
        // shields stable neighbors), and the higher id yields.
        if v > u
            && self.colors[v as usize].load(Ordering::Relaxed)
                == self.colors[u as usize].load(Ordering::Relaxed)
        {
            // W(i): scatter the recolor request to the remote offender
            // (Algorithm 6 line 16); swap makes the activation exactly-once.
            // ORDERING: AcqRel — Release orders the conflicting-color
            // reads above before the flag is raised; Acquire pairs with
            // the recolor pass's flag reset so it observes those colors.
            probe.atomic_rmw(addr_of_index(&self.flagged, v as usize), 1);
            !self.flagged[v as usize].swap(true, Ordering::AcqRel)
        } else {
            false
        }
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        probe.read(addr_of_index(&self.colors, u as usize), 4);
        probe.branch_cond();
        // Own-flag scheduling (Algorithm 6 line 18): v defers itself when
        // it clashes with a lower-id frontier neighbor.
        v > u
            && self.colors[v as usize].load(Ordering::Relaxed)
                == self.colors[u as usize].load(Ordering::Relaxed)
    }
}

impl<P: ShardProbe> Program<P> for ColoringProgram {
    type Output = Vec<u32>;

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        Frontier::full(g)
    }

    fn begin_round(
        &mut self,
        _ctx: crate::program::RoundCtx,
        g: &CsrGraph,
        frontier: &mut Frontier,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) {
        // Speculatively color the frontier (Boman's parallel phase 1).
        let this = &*self;
        engine.vertex_map(g, frontier, probes, |v, probe| {
            let free = this.smallest_free(g, v);
            probe.write(addr_of_index(&this.colors, v as usize), 4);
            this.colors[v as usize].store(free, Ordering::Relaxed);
            this.flagged[v as usize].store(false, Ordering::Relaxed);
        });
    }

    fn finish(self, _g: &CsrGraph) -> Vec<u32> {
        self.colors.into_iter().map(AtomicU32::into_inner).collect()
    }
}

/// Graph coloring under the given direction policy.
pub fn color<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    policy: DirectionPolicy,
    probes: &ProbeShards<P>,
) -> ParColoringResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, ColoringProgram::new(g));
    ParColoringResult {
        colors: run.output,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::coloring::is_proper_coloring;
    use pp_core::Direction;
    use pp_graph::gen;
    use pp_telemetry::{CountingProbe, NullProbe};

    /// Single source of truth for the schedule axis: the same sweep the
    /// benches and equivalence tests iterate.
    fn policies() -> impl Iterator<Item = DirectionPolicy> {
        DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
    }

    fn graphs() -> Vec<CsrGraph> {
        vec![
            gen::path(30),
            gen::cycle(31),
            gen::complete(17),
            gen::star(25),
            gen::rmat(7, 5, 3),
            gen::road_grid(8, 8, 0.6, 1),
        ]
    }

    #[test]
    fn every_schedule_produces_a_proper_bounded_coloring() {
        for g in graphs() {
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for policy in policies() {
                    let r = color(&engine, &g, policy, &probes);
                    assert!(
                        is_proper_coloring(&g, &r.colors),
                        "x{threads} {policy:?} n={}",
                        g.num_vertices()
                    );
                    assert!(
                        r.num_colors() <= g.max_degree() + 1,
                        "greedy bound violated: {} colors, Δ = {}",
                        r.num_colors(),
                        g.max_degree()
                    );
                }
            }
        }
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = gen::complete(9);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = color(&engine, &g, policy, &probes);
            assert_eq!(r.num_colors(), 9, "{policy:?}");
        }
    }

    #[test]
    fn single_thread_converges_in_one_round() {
        // One thread scans chunks sequentially and reads fresh colors, so
        // the speculative phase is plain sequential greedy: no conflicts.
        let g = gen::rmat(7, 5, 9);
        let engine = Engine::new(1);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = color(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        assert!(is_proper_coloring(&g, &r.colors));
        assert_eq!(r.report.num_rounds(), 1);
    }

    #[test]
    fn rounds_shrink_monotonically() {
        let g = gen::rmat(8, 6, 7);
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = color(&engine, &g, DirectionPolicy::adaptive(), &probes);
        assert!(is_proper_coloring(&g, &r.colors));
        assert!(
            r.report
                .rounds
                .windows(2)
                .all(|w| w[1].frontier < w[0].frontier),
            "each round must strictly shrink the conflict set"
        );
    }

    #[test]
    fn push_schedules_remote_pull_schedules_own() {
        // §4.6: the directions differ in *whose* state the conflict pass
        // writes — push claims the remote flag atomically, pull never
        // synchronizes.
        let g = gen::rmat(7, 5, 7);
        let engine = Engine::new(4);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let push_run = color(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        let push = probes.merged();

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let pull_run = color(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Pull),
            &probes,
        );
        let pull = probes.merged();

        assert!(is_proper_coloring(&g, &push_run.colors));
        assert!(is_proper_coloring(&g, &pull_run.colors));
        assert_eq!(pull.atomics, 0, "pull conflict detection is sync-free");
        // Push only claims flags when conflicts exist; with one round there
        // are none, so only assert the pull side's cleanliness plus push's
        // lock-freedom.
        assert_eq!(push.locks, 0);
    }
}
