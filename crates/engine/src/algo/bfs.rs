//! Frontier-driven BFS on the engine (§3.3/§4.3 as an [`EdgeKernel`]).
//!
//! Push rounds are Algorithm 3's top-down step (CAS parent claims); pull
//! rounds are bottom-up (own-cell writes, scan saturates at the first
//! frontier parent); the [`DirectionPolicy`] decides per round, making
//! [`DirectionPolicy::adaptive`] the engine's direction-optimizing BFS.

use std::sync::atomic::{AtomicU32, Ordering};

use pp_core::bfs::{NO_PARENT, UNVISITED};
use pp_core::Direction;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};

/// One executed round.
#[derive(Clone, Copy, Debug)]
pub struct ParRound {
    /// Round index (= level being discovered - 1).
    pub round: u32,
    /// Vertices in the consumed frontier.
    pub frontier: usize,
    /// Out-edges of the consumed frontier (what the policy observed).
    pub frontier_edges: u64,
    /// Direction the policy chose.
    pub dir: Direction,
}

/// Result of an engine BFS.
#[derive(Clone, Debug)]
pub struct ParBfsResult {
    /// BFS-tree parent per vertex ([`NO_PARENT`] if unreached; the root is
    /// its own parent).
    pub parent: Vec<VertexId>,
    /// Distance from the root ([`UNVISITED`] if unreached).
    pub level: Vec<u32>,
    /// Per-round trace.
    pub rounds: Vec<ParRound>,
}

impl ParBfsResult {
    /// Number of reached vertices (including the root).
    pub fn reached(&self) -> usize {
        self.level.iter().filter(|&&l| l != UNVISITED).count()
    }
}

struct BfsKernel<'a> {
    parent: &'a [AtomicU32],
    level: &'a [AtomicU32],
    cur: u32,
}

impl<P: Probe> EdgeKernel<P> for BfsKernel<'_> {
    fn push(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        probe.branch_cond();
        probe.read(addr_of_index(self.parent, v as usize), 4);
        if self.parent[v as usize].load(Ordering::Relaxed) != NO_PARENT {
            return false;
        }
        // W: write conflict — one CAS decides among racing claimants (§4.3).
        probe.atomic_rmw(addr_of_index(self.parent, v as usize), 4);
        if self.parent[v as usize]
            .compare_exchange(NO_PARENT, u, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            probe.write(addr_of_index(self.level, v as usize), 4);
            self.level[v as usize].store(self.cur + 1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn pull(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        // Own-cell writes only: v is processed by exactly one thread (§3.8).
        self.parent[v as usize].store(u, Ordering::Relaxed);
        probe.write(addr_of_index(self.level, v as usize), 4);
        self.level[v as usize].store(self.cur + 1, Ordering::Relaxed);
        true
    }

    fn pull_candidate(&self, v: VertexId, probe: &P) -> bool {
        probe.branch_cond();
        self.level[v as usize].load(Ordering::Relaxed) == UNVISITED
    }

    fn pull_saturates(&self) -> bool {
        true
    }
}

/// BFS from `root` under the given direction policy.
pub fn bfs<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    root: VertexId,
    mut policy: DirectionPolicy,
    probes: &ProbeShards<P>,
) -> ParBfsResult {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect();
    parent[root as usize].store(root, Ordering::Relaxed);
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    level[root as usize].store(0, Ordering::Relaxed);

    let mut frontier = Frontier::single(g, root);
    let mut rounds = Vec::new();
    let mut cur = 0u32;

    while !frontier.is_empty() {
        let dir = policy.next(&frontier, g);
        rounds.push(ParRound {
            round: cur,
            frontier: frontier.len(),
            frontier_edges: frontier.edge_count(),
            dir,
        });
        let kernel = BfsKernel {
            parent: &parent,
            level: &level,
            cur,
        };
        frontier = engine.edge_map(g, &mut frontier, dir, &kernel, probes);
        cur += 1;
    }

    ParBfsResult {
        parent: parent.into_iter().map(AtomicU32::into_inner).collect(),
        level: level.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, stats};
    use pp_telemetry::{CountingProbe, NullProbe};

    fn engine_levels(g: &CsrGraph, policy: DirectionPolicy, threads: usize) -> Vec<u32> {
        let engine = Engine::new(threads);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        bfs(&engine, g, 0, policy, &probes).level
    }

    #[test]
    fn levels_match_sequential_reference_in_every_mode() {
        for g in [gen::path(60), gen::rmat(8, 5, 7), gen::complete(40)] {
            let (expected, _, _) = stats::bfs_levels(&g, 0);
            for threads in [1, 4] {
                for policy in [
                    DirectionPolicy::Fixed(Direction::Push),
                    DirectionPolicy::Fixed(Direction::Pull),
                    DirectionPolicy::adaptive(),
                ] {
                    assert_eq!(engine_levels(&g, policy, threads), expected);
                }
            }
        }
    }

    #[test]
    fn adaptive_policy_actually_switches_on_dense_graphs() {
        let g = gen::complete(128);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = bfs(&engine, &g, 0, DirectionPolicy::adaptive(), &probes);
        assert!(r.rounds.iter().any(|ri| ri.dir == Direction::Pull));
        assert!(r.rounds.iter().any(|ri| ri.dir == Direction::Push));
    }

    #[test]
    fn parents_form_a_valid_tree() {
        let g = gen::rmat(7, 6, 13);
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = bfs(&engine, &g, 0, DirectionPolicy::adaptive(), &probes);
        for v in g.vertices() {
            if v == 0 {
                assert_eq!(r.parent[0], 0);
            } else if r.level[v as usize] != UNVISITED {
                let p = r.parent[v as usize];
                assert!(g.has_edge(p, v), "parent edge {p}->{v} must exist");
                assert_eq!(r.level[p as usize] + 1, r.level[v as usize]);
            } else {
                assert_eq!(r.parent[v as usize], NO_PARENT);
            }
        }
    }

    #[test]
    fn push_counts_cas_pull_counts_none() {
        let g = gen::rmat(7, 4, 5);
        let engine = Engine::new(2);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        bfs(
            &engine,
            &g,
            0,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        let push = probes.merged();
        assert!(push.atomics > 0, "push BFS must CAS");
        assert_eq!(push.locks, 0);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        bfs(
            &engine,
            &g,
            0,
            DirectionPolicy::Fixed(Direction::Pull),
            &probes,
        );
        let pull = probes.merged();
        assert_eq!(pull.atomics, 0, "pull BFS is synchronization-free");
        assert!(pull.reads > 0);
    }
}
