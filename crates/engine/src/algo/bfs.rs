//! Frontier-driven BFS as a [`Program`] (§3.3/§4.3).
//!
//! Push rounds are Algorithm 3's top-down step (CAS parent claims); pull
//! rounds are bottom-up (own-cell writes, scan saturates at the first
//! frontier parent); the [`DirectionPolicy`] decides per round, making
//! [`DirectionPolicy::adaptive`] the engine's direction-optimizing BFS.
//! The round loop itself lives in [`crate::runner::Runner`] — this module
//! supplies only state, kernels, and the seed frontier.

use std::sync::atomic::{AtomicU32, Ordering};

use pp_core::bfs::{NO_PARENT, UNVISITED};
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{Program, RoundCtx};
use crate::report::RunReport;
use crate::runner::Runner;

/// Result of an engine BFS.
#[derive(Clone, Debug)]
pub struct ParBfsResult {
    /// BFS-tree parent per vertex ([`NO_PARENT`] if unreached; the root is
    /// its own parent).
    pub parent: Vec<VertexId>,
    /// Distance from the root ([`UNVISITED`] if unreached).
    pub level: Vec<u32>,
    /// Per-round direction/frontier/edge statistics.
    pub report: RunReport,
}

impl ParBfsResult {
    /// Number of reached vertices (including the root).
    pub fn reached(&self) -> usize {
        self.level.iter().filter(|&&l| l != UNVISITED).count()
    }
}

/// BFS as a vertex program: parent claims and level stamps.
pub struct BfsProgram {
    root: VertexId,
    parent: Vec<AtomicU32>,
    level: Vec<AtomicU32>,
    /// Level being discovered this round (= round index).
    cur: u32,
}

impl BfsProgram {
    /// A program computing the BFS tree from `root`.
    pub fn new(g: &CsrGraph, root: VertexId) -> Self {
        let n = g.num_vertices();
        assert!((root as usize) < n, "root out of range");
        Self {
            root,
            parent: (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect(),
            level: (0..n).map(|_| AtomicU32::new(UNVISITED)).collect(),
            cur: 0,
        }
    }
}

impl<P: Probe> EdgeKernel<P> for BfsProgram {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        probe.branch_cond();
        probe.read(addr_of_index(&self.parent, v as usize), 4);
        if self.parent[v as usize].load(Ordering::Relaxed) != NO_PARENT {
            return false;
        }
        // W: write conflict — one CAS decides among racing claimants (§4.3).
        // ORDERING: AcqRel — the claim must not reorder with the winner's
        // level store below (Release side) and a racing loser that sees
        // the parent set must also see that level (Acquire side).
        probe.atomic_rmw(addr_of_index(&self.parent, v as usize), 4);
        if self.parent[v as usize]
            .compare_exchange(NO_PARENT, u, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            probe.write(addr_of_index(&self.level, v as usize), 4);
            self.level[v as usize].store(self.cur + 1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        // Own-cell writes only: v is processed by exactly one thread (§3.8).
        self.parent[v as usize].store(u, Ordering::Relaxed);
        probe.write(addr_of_index(&self.level, v as usize), 4);
        self.level[v as usize].store(self.cur + 1, Ordering::Relaxed);
        true
    }

    fn pull_candidate(&self, v: VertexId, probe: &P) -> bool {
        probe.branch_cond();
        self.level[v as usize].load(Ordering::Relaxed) == UNVISITED
    }

    fn pull_saturates(&self) -> bool {
        true
    }
}

impl<P: ShardProbe> Program<P> for BfsProgram {
    type Output = (Vec<VertexId>, Vec<u32>);

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        self.parent[self.root as usize].store(self.root, Ordering::Relaxed);
        self.level[self.root as usize].store(0, Ordering::Relaxed);
        Frontier::single(g, self.root)
    }

    fn begin_round(
        &mut self,
        ctx: RoundCtx,
        _g: &CsrGraph,
        _frontier: &mut Frontier,
        _engine: &Engine,
        _probes: &ProbeShards<P>,
    ) {
        self.cur = ctx.round;
    }

    fn finish(self, _g: &CsrGraph) -> Self::Output {
        (
            self.parent.into_iter().map(AtomicU32::into_inner).collect(),
            self.level.into_iter().map(AtomicU32::into_inner).collect(),
        )
    }
}

/// BFS from `root` under the given direction policy.
pub fn bfs<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    root: VertexId,
    policy: DirectionPolicy,
    probes: &ProbeShards<P>,
) -> ParBfsResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, BfsProgram::new(g, root));
    let (parent, level) = run.output;
    ParBfsResult {
        parent,
        level,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::Direction;
    use pp_graph::{gen, stats};
    use pp_telemetry::{CountingProbe, NullProbe};

    fn engine_levels(g: &CsrGraph, policy: DirectionPolicy, threads: usize) -> Vec<u32> {
        let engine = Engine::new(threads);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        bfs(&engine, g, 0, policy, &probes).level
    }

    #[test]
    fn levels_match_sequential_reference_in_every_mode() {
        for g in [gen::path(60), gen::rmat(8, 5, 7), gen::complete(40)] {
            let (expected, _, _) = stats::bfs_levels(&g, 0);
            for threads in [1, 4] {
                for policy in [
                    DirectionPolicy::Fixed(Direction::Push),
                    DirectionPolicy::Fixed(Direction::Pull),
                    DirectionPolicy::adaptive(),
                ] {
                    assert_eq!(engine_levels(&g, policy, threads), expected);
                }
            }
        }
    }

    #[test]
    fn adaptive_policy_actually_switches_on_dense_graphs() {
        let g = gen::complete(128);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = bfs(&engine, &g, 0, DirectionPolicy::adaptive(), &probes);
        assert!(r.report.switched());
    }

    #[test]
    fn parents_form_a_valid_tree() {
        let g = gen::rmat(7, 6, 13);
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = bfs(&engine, &g, 0, DirectionPolicy::adaptive(), &probes);
        for v in g.vertices() {
            if v == 0 {
                assert_eq!(r.parent[0], 0);
            } else if r.level[v as usize] != UNVISITED {
                let p = r.parent[v as usize];
                assert!(g.has_edge(p, v), "parent edge {p}->{v} must exist");
                assert_eq!(r.level[p as usize] + 1, r.level[v as usize]);
            } else {
                assert_eq!(r.parent[v as usize], NO_PARENT);
            }
        }
    }

    #[test]
    fn report_traces_one_round_per_level() {
        let g = gen::path(30);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = bfs(
            &engine,
            &g,
            0,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        assert_eq!(r.report.num_rounds(), 30, "path: one frontier per level");
        assert_eq!(r.report.phases, 1, "BFS is single-phase");
        assert!(r.report.rounds.iter().all(|s| s.frontier == 1));
    }

    #[test]
    fn push_counts_cas_pull_counts_none() {
        let g = gen::rmat(7, 4, 5);
        let engine = Engine::new(2);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        bfs(
            &engine,
            &g,
            0,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        let push = probes.merged();
        assert!(push.atomics > 0, "push BFS must CAS");
        assert_eq!(push.locks, 0);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        bfs(
            &engine,
            &g,
            0,
            DirectionPolicy::Fixed(Direction::Pull),
            &probes,
        );
        let pull = probes.merged();
        assert_eq!(pull.atomics, 0, "pull BFS is synchronization-free");
        assert!(pull.reads > 0);
    }
}
