//! Community label propagation as a [`Program`] [Raghavan et al. 2007].
//!
//! Synchronous most-frequent-label adoption: every iteration is one phase
//! whose single round deposits each vertex's label with every neighbor;
//! [`Program::next_phase`] then tallies the ballots (most frequent label,
//! smallest on ties — deterministic), double-buffers, and reseeds the full
//! frontier until fixpoint or the iteration cap.
//!
//! The ballots are the push–pull battleground (§3.8): the push update
//! deposits into the *target's* ballot under a sharded lock (the same
//! lock-heavy signature as push-PR, §4.1); the pull gather appends to the
//! *own* ballot — single-owner, no synchronization. Both fill the same
//! multiset, so every schedule computes the identical label sequence as
//! the `pp-core` twin ([`pp_core::labelprop::label_propagation`]).

use std::cell::UnsafeCell;

use pp_core::sync::ShardedLocks;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::Program;
use crate::report::RunReport;
use crate::runner::Runner;

/// Result of an engine label-propagation run.
#[derive(Clone, Debug, PartialEq)]
pub struct ParLabelPropResult {
    /// Final per-vertex community label.
    pub labels: Vec<u32>,
    /// Iterations executed (≤ the caller's cap).
    pub iterations: usize,
    /// Whether a fixpoint was reached before the cap (synchronous LP can
    /// oscillate on bipartite-ish structures, so the cap is load-bearing).
    pub converged: bool,
    /// Per-round direction/frontier/edge statistics.
    pub report: RunReport,
}

impl ParLabelPropResult {
    /// Number of distinct communities.
    pub fn num_communities(&self) -> usize {
        let mut ls = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }
}

/// Per-vertex vote boxes with two disciplines over one storage: push
/// deposits under the sharded lock table, pull deposits single-owner.
struct Ballots(Vec<UnsafeCell<Vec<u32>>>);

// SAFETY: concurrent access follows the engine's contracts — push deposits
// serialize through `LabelPropProgram::locks`, pull deposits touch only the
// cell of the vertex the chunk partition assigned to the calling thread.
unsafe impl Sync for Ballots {}

impl Ballots {
    /// # Safety
    /// Caller must hold the deposit discipline for `v` (lock or ownership).
    unsafe fn deposit(&self, v: VertexId, label: u32) {
        (*self.0[v as usize].get()).push(label);
    }
}

/// Picks the winning label from a *sorted* vote slice: most frequent,
/// smallest on ties. `None` for an empty ballot (isolated vertex).
fn tally(sorted_votes: &[u32]) -> Option<u32> {
    if sorted_votes.is_empty() {
        return None;
    }
    let (mut best, mut best_count) = (sorted_votes[0], 0usize);
    let mut i = 0;
    while i < sorted_votes.len() {
        let label = sorted_votes[i];
        let mut j = i;
        while j < sorted_votes.len() && sorted_votes[j] == label {
            j += 1;
        }
        // Strict `>` keeps the first (smallest) label on equal counts.
        if j - i > best_count {
            best = label;
            best_count = j - i;
        }
        i = j;
    }
    Some(best)
}

/// Synchronous label propagation as a vertex program.
pub struct LabelPropProgram {
    /// Labels of the previous iteration (read-only during a round).
    labels: Vec<u32>,
    /// Labels being decided this iteration.
    new_labels: Vec<u32>,
    ballots: Ballots,
    locks: ShardedLocks,
    max_iters: usize,
    iterations: usize,
    converged: bool,
}

impl LabelPropProgram {
    /// A program running at most `max_iters` synchronous iterations.
    pub fn new(g: &CsrGraph, max_iters: usize) -> Self {
        let n = g.num_vertices();
        let labels: Vec<u32> = (0..n as u32).collect();
        Self {
            new_labels: labels.clone(),
            labels,
            ballots: Ballots((0..n).map(|_| UnsafeCell::new(Vec::new())).collect()),
            locks: ShardedLocks::new(256),
            max_iters,
            iterations: 0,
            converged: false,
        }
    }
}

impl<P: Probe> EdgeKernel<P> for LabelPropProgram {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        // W: lock-guarded deposit into the target's shared ballot.
        probe.lock();
        probe.write(addr_of_index(&self.ballots.0, v as usize), 4);
        self.locks.with(v as usize, || {
            // SAFETY: the shard lock for `v` serializes all push deposits;
            // rounds are all-push or all-pull, so no unlocked pull deposit
            // races this cell.
            unsafe { self.ballots.deposit(v, self.labels[u as usize]) };
        });
        false
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        // R: read the neighbor's label; own-ballot append, no locks.
        probe.read(addr_of_index(&self.labels, u as usize), 4);
        probe.write(addr_of_index(&self.ballots.0, v as usize), 4);
        // SAFETY: the engine hands `v` to exactly one thread in a pull
        // round, making this cell single-owner.
        unsafe { self.ballots.deposit(v, self.labels[u as usize]) };
        false
    }
}

impl<P: ShardProbe> Program<P> for LabelPropProgram {
    type Output = (Vec<u32>, usize, bool);

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        if self.max_iters == 0 || g.num_vertices() == 0 {
            self.converged = g.num_vertices() == 0;
            Frontier::empty(g.num_vertices())
        } else {
            Frontier::full(g)
        }
    }

    fn next_phase(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        if self.iterations >= self.max_iters || self.converged || g.num_vertices() == 0 {
            return None;
        }
        self.iterations += 1;
        // Tally: owners sort and count their own ballots — the apply half
        // of the synchronous update, identical for both directions.
        {
            let (ballots, labels) = (&self.ballots, &self.labels);
            let new_labels = pp_core::sync::SyncSlice::new(&mut self.new_labels);
            engine.map_vertices(g, probes, |v, _| {
                // SAFETY: map_vertices hands each vertex to exactly one
                // chunk; ballot and output cells are exclusive to it.
                let votes = unsafe { &mut *ballots.0[v as usize].get() };
                votes.sort_unstable();
                let decided = tally(votes).unwrap_or(labels[v as usize]);
                votes.clear();
                unsafe { new_labels.write(v as usize, decided) };
            });
        }
        if self.new_labels == self.labels {
            self.converged = true;
            return None;
        }
        self.labels.copy_from_slice(&self.new_labels);
        if self.iterations >= self.max_iters {
            return None;
        }
        Some(Frontier::full(g))
    }

    fn finish(self, _g: &CsrGraph) -> Self::Output {
        (self.labels, self.iterations, self.converged)
    }
}

/// Label propagation under the given direction policy, capped at
/// `max_iters` iterations.
pub fn label_propagation<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    policy: DirectionPolicy,
    max_iters: usize,
    probes: &ProbeShards<P>,
) -> ParLabelPropResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, LabelPropProgram::new(g, max_iters));
    let (labels, iterations, converged) = run.output;
    ParLabelPropResult {
        labels,
        iterations,
        converged,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::labelprop::label_propagation as lp_oracle;
    use pp_core::Direction;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::{CountingProbe, NullProbe};

    /// Single source of truth for the schedule axis: the same sweep the
    /// benches and equivalence tests iterate.
    fn policies() -> impl Iterator<Item = DirectionPolicy> {
        DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
    }

    #[test]
    fn tally_prefers_frequency_then_smallest() {
        assert_eq!(tally(&[]), None);
        assert_eq!(tally(&[5]), Some(5));
        assert_eq!(tally(&[1, 2, 2, 3]), Some(2));
        assert_eq!(tally(&[1, 1, 2, 2]), Some(1));
        assert_eq!(tally(&[0, 3, 3, 3, 9, 9]), Some(3));
    }

    #[test]
    fn matches_the_core_oracle_exactly() {
        for seed in 0..3 {
            let g = gen::community(3, 25, 120, 15, seed);
            let expected = lp_oracle(&g, Direction::Pull, 30);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for policy in policies() {
                    let r = label_propagation(&engine, &g, policy, 30, &probes);
                    assert_eq!(
                        r.labels, expected.labels,
                        "seed {seed} x{threads} {policy:?}"
                    );
                    assert_eq!(r.iterations, expected.iterations, "seed {seed} {policy:?}");
                    assert_eq!(r.converged, expected.converged, "seed {seed} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn iteration_cap_halts_oscillation() {
        // A star oscillates under synchronous LP: the center adopts the
        // leaves' label while the leaves adopt the center's.
        let g = gen::star(8);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = label_propagation(&engine, &g, policy, 10, &probes);
            assert_eq!(r.iterations, 10, "{policy:?}");
            assert!(!r.converged, "{policy:?}");
            assert_eq!(r.report.num_rounds(), 10, "one round per iteration");
        }
    }

    #[test]
    fn isolated_vertices_keep_their_label() {
        let g = GraphBuilder::undirected(4).edge(0, 1).build();
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = label_propagation(&engine, &g, policy, 20, &probes);
            assert_eq!(r.labels[2], 2, "{policy:?}");
            assert_eq!(r.labels[3], 3, "{policy:?}");
        }
    }

    #[test]
    fn push_locks_pull_reads() {
        let g = gen::community(2, 20, 60, 5, 1);
        let engine = Engine::new(2);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        label_propagation(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            5,
            &probes,
        );
        assert!(probes.merged().locks > 0);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        label_propagation(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Pull),
            5,
            &probes,
        );
        assert_eq!(probes.merged().locks, 0);
        assert!(probes.merged().reads > 0);
    }

    #[test]
    fn empty_graph_and_zero_cap() {
        let engine = Engine::new(1);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let g = GraphBuilder::undirected(0).build();
        let r = label_propagation(&engine, &g, DirectionPolicy::adaptive(), 5, &probes);
        assert!(r.labels.is_empty());
        assert!(r.converged);

        let g = gen::path(5);
        let r = label_propagation(&engine, &g, DirectionPolicy::adaptive(), 0, &probes);
        assert_eq!(r.labels, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.iterations, 0);
    }
}
