//! k-core decomposition as a [`Program`] (§3.8 peeling).
//!
//! Phases are the peel levels `k = 0, 1, …`; rounds inside a phase are the
//! peel waves. [`Program::begin_round`] stamps the incoming frontier with
//! coreness `k` (a frontier vertex map); the edge kernels then propagate
//! the removal to live neighbors: the push update decrements the shared
//! induced-degree counter with an FAA (the §2.3 write conflict), the pull
//! gather decrements the owned counter per peeled frontier neighbor — the
//! same arithmetic, scheduled the other way. A neighbor whose counter
//! crosses the `k` threshold joins the next wave. The sequential
//! Batagelj–Zaveršnik peeling ([`pp_core::kcore::coreness_seq`]) is the
//! oracle.

use std::sync::atomic::{AtomicU32, Ordering};

use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{frontier_where, Program, RoundCtx};
use crate::report::RunReport;
use crate::runner::Runner;

/// A live (not yet peeled) vertex.
const LIVE: u32 = u32::MAX;

/// Result of an engine k-core decomposition.
#[derive(Clone, Debug)]
pub struct ParKCoreResult {
    /// Per-vertex coreness (core number).
    pub coreness: Vec<u32>,
    /// The degeneracy of the graph: the maximum coreness.
    pub degeneracy: u32,
    /// Per-round (peel-wave) direction/frontier/edge statistics.
    pub report: RunReport,
}

impl ParKCoreResult {
    /// Vertices belonging to the `k`-core (coreness ≥ k).
    pub fn core_members(&self, k: u32) -> Vec<VertexId> {
        self.coreness
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Peeling as a vertex program: one phase per coreness level.
pub struct KCoreProgram {
    /// Induced degree among still-live vertices.
    deg: Vec<AtomicU32>,
    /// Coreness once peeled; [`LIVE`] while alive.
    coreness: Vec<AtomicU32>,
    /// Current peel level.
    k: u32,
    /// Live vertices remaining.
    remaining: usize,
}

impl KCoreProgram {
    /// A program computing every vertex's core number.
    pub fn new(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        Self {
            deg: g
                .vertices()
                .map(|v| AtomicU32::new(g.degree(v) as u32))
                .collect(),
            coreness: (0..n).map(|_| AtomicU32::new(LIVE)).collect(),
            k: 0,
            remaining: n,
        }
    }

    /// Seed frontier for the smallest level with members: live vertices of
    /// induced degree ≤ k, bumping k while levels are empty. Empty iff no
    /// live vertex remains.
    fn seed_level(&mut self, g: &CsrGraph) -> Frontier {
        loop {
            if self.remaining == 0 {
                return Frontier::empty(g.num_vertices());
            }
            let k = self.k;
            let seeds = frontier_where(g, |v| {
                self.coreness[v as usize].load(Ordering::Relaxed) == LIVE
                    && self.deg[v as usize].load(Ordering::Relaxed) <= k
            });
            if !seeds.is_empty() {
                return seeds;
            }
            self.k += 1;
        }
    }
}

impl<P: Probe> EdgeKernel<P> for KCoreProgram {
    fn push_update(&self, _u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        probe.branch_cond();
        if self.coreness[v as usize].load(Ordering::Relaxed) != LIVE {
            return false;
        }
        // W(i): FAA on the shared degree counter; the neighbor whose
        // counter crosses the threshold under *this* FAA joins the next
        // wave (exactly-once: FAA returns the previous value).
        // ORDERING: AcqRel — the threshold-crossing FAA decides wave
        // membership, so it must not reorder with the liveness check
        // above (Acquire) nor with the enqueue that follows (Release).
        probe.atomic_rmw(addr_of_index(&self.deg, v as usize), 4);
        let prev = self.deg[v as usize].fetch_sub(1, Ordering::AcqRel);
        prev == self.k + 1
    }

    fn pull_gather(&self, v: VertexId, _u: VertexId, _w: Weight, probe: &P) -> bool {
        // Own-cell decrement: `u` was peeled this round, so `v` loses one
        // live neighbor; only v's owner thread touches deg[v].
        probe.read(addr_of_index(&self.deg, v as usize), 4);
        probe.branch_cond();
        let d = self.deg[v as usize].load(Ordering::Relaxed) - 1;
        probe.write(addr_of_index(&self.deg, v as usize), 4);
        self.deg[v as usize].store(d, Ordering::Relaxed);
        d <= self.k
    }

    fn pull_candidate(&self, v: VertexId, probe: &P) -> bool {
        probe.branch_cond();
        self.coreness[v as usize].load(Ordering::Relaxed) == LIVE
    }
}

impl<P: ShardProbe> Program<P> for KCoreProgram {
    type Output = Vec<u32>;

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        self.seed_level(g)
    }

    fn begin_round(
        &mut self,
        _ctx: RoundCtx,
        g: &CsrGraph,
        frontier: &mut Frontier,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) {
        // Peel the whole wave at coreness k before its removal propagates.
        let (coreness, k) = (&self.coreness, self.k);
        engine.vertex_map(g, frontier, probes, |v, _| {
            coreness[v as usize].store(k, Ordering::Relaxed);
        });
        self.remaining -= frontier.len();
    }

    fn next_phase(
        &mut self,
        g: &CsrGraph,
        _engine: &Engine,
        _probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        if self.remaining == 0 {
            return None;
        }
        // Level k drained: every remaining live vertex has induced degree
        // > k, so the next phase starts at k + 1 (or higher).
        self.k += 1;
        Some(self.seed_level(g))
    }

    fn finish(self, _g: &CsrGraph) -> Vec<u32> {
        self.coreness
            .into_iter()
            .map(AtomicU32::into_inner)
            .collect()
    }
}

/// k-core decomposition under the given direction policy.
pub fn kcore<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    policy: DirectionPolicy,
    probes: &ProbeShards<P>,
) -> ParKCoreResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, KCoreProgram::new(g));
    let coreness = run.output;
    let degeneracy = coreness.iter().copied().max().unwrap_or(0);
    ParKCoreResult {
        coreness,
        degeneracy,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::kcore::coreness_seq;
    use pp_core::Direction;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::{CountingProbe, NullProbe};

    /// Single source of truth for the schedule axis: the same sweep the
    /// benches and equivalence tests iterate.
    fn policies() -> impl Iterator<Item = DirectionPolicy> {
        DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
    }

    #[test]
    fn matches_sequential_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::rmat(8, 6, seed);
            let expected = coreness_seq(&g);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for policy in policies() {
                    let r = kcore(&engine, &g, policy, &probes);
                    assert_eq!(r.coreness, expected, "seed {seed} x{threads} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn clique_with_tail() {
        // 4-clique {0,1,2,3} with a pendant path 3-4-5: coreness 3,3,3,3,1,1.
        let g = GraphBuilder::undirected(6)
            .edges([
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ])
            .build();
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = kcore(&engine, &g, policy, &probes);
            assert_eq!(r.coreness, vec![3, 3, 3, 3, 1, 1], "{policy:?}");
            assert_eq!(r.core_members(3), vec![0, 1, 2, 3]);
            assert_eq!(r.degeneracy, 3);
        }
    }

    #[test]
    fn phases_are_the_occupied_levels() {
        // A path is 1-degenerate: phase 0 peels nothing at k=0 (no isolated
        // vertices → the seed jumps to k=1) and the whole path unravels at
        // level 1 in end-inward waves.
        let g = gen::path(20);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = kcore(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        assert_eq!(r.degeneracy, 1);
        assert_eq!(r.report.phases, 1, "one occupied peel level");
        assert_eq!(r.report.num_rounds(), 10, "20-path peels 2 ends per wave");
    }

    #[test]
    fn push_uses_atomics_pull_does_not() {
        let g = gen::rmat(8, 5, 11);
        let engine = Engine::new(2);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        kcore(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        let push = probes.merged();
        assert!(push.atomics > 0);
        // Push's total decrements are bounded by the arc count.
        assert!(push.atomics <= g.num_arcs() as u64);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        kcore(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Pull),
            &probes,
        );
        let pull = probes.merged();
        assert_eq!(pull.atomics, 0);
        assert!(pull.reads > 0);
    }

    #[test]
    fn empty_and_edgeless() {
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let empty = GraphBuilder::undirected(0).build();
        assert_eq!(
            kcore(&engine, &empty, DirectionPolicy::adaptive(), &probes).degeneracy,
            0
        );
        let edgeless = GraphBuilder::undirected(5).build();
        let r = kcore(&engine, &edgeless, DirectionPolicy::adaptive(), &probes);
        assert_eq!(r.coreness, vec![0; 5]);
        assert_eq!(r.degeneracy, 0);
    }
}
