//! PageRank on the engine (§3.1/§4.1 as dense vertex maps).
//!
//! Every iteration is an all-vertices round (`Engine::map_vertices`) with
//! degree-aware chunks. The pull pass gathers neighbor ranks into the
//! owned cell — no synchronization, bitwise identical to
//! [`pp_core::pagerank::pagerank_pull`]. The push pass scatters shares
//! through the CAS-loop [`AtomicF64`], genuinely contending the float
//! emulation the paper discusses (§4.1); float addition reorders, so push
//! agrees with the oracle to ε rather than bitwise.

use pp_core::pagerank::PrOptions;
use pp_core::sync::{AtomicF64, SyncSlice};
use pp_core::Direction;
use pp_graph::CsrGraph;
use pp_telemetry::addr_of_index;

use crate::ops::Engine;
use crate::probes::{ProbeShards, ShardProbe};

/// PageRank in the given direction; `opts` as in the core crate.
pub fn pagerank<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    dir: Direction,
    opts: &PrOptions,
    probes: &ProbeShards<P>,
) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - opts.damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut new_pr = vec![0.0f64; n];
    let offsets = g.offsets();

    for _ in 0..opts.iters {
        match dir {
            Direction::Pull => {
                let pr_ref = &pr;
                let out = SyncSlice::new(&mut new_pr);
                engine.map_vertices(g, probes, |v, probe| {
                    let mut acc = 0.0;
                    for &u in g.neighbors(v) {
                        // R: the neighbor's rank and degree (§7.3).
                        probe.read(addr_of_index(pr_ref, u as usize), 8);
                        probe.read(addr_of_index(offsets, u as usize), 8);
                        probe.branch_cond();
                        let d = (offsets[u as usize + 1] - offsets[u as usize]) as f64;
                        acc += pr_ref[u as usize] / d;
                    }
                    probe.write(out.addr(v as usize), 8);
                    // SAFETY: map_vertices hands each vertex to exactly one
                    // chunk, so the write target is exclusive.
                    unsafe { out.write(v as usize, base + opts.damping * acc) };
                });
            }
            Direction::Push => {
                new_pr.fill(base);
                let pr_ref = &pr;
                let atomics = AtomicF64::from_mut_slice(&mut new_pr);
                engine.map_vertices(g, probes, |v, probe| {
                    let d = g.degree(v);
                    if d == 0 {
                        return;
                    }
                    probe.read(addr_of_index(pr_ref, v as usize), 8);
                    let share = opts.damping * pr_ref[v as usize] / d as f64;
                    for &u in g.neighbors(v) {
                        probe.branch_cond();
                        // W(f): float write conflict resolved by the CAS
                        // loop; one atomic per attempt (§4.1).
                        let attempts = atomics[u as usize].fetch_add(share);
                        for _ in 0..attempts {
                            probe.atomic_rmw(addr_of_index(atomics, u as usize), 8);
                        }
                    }
                });
            }
        }
        std::mem::swap(&mut pr, &mut new_pr);
    }
    pr
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::pagerank::{l1_distance, pagerank_seq};
    use pp_graph::gen;
    use pp_telemetry::{CountingProbe, NullProbe};

    #[test]
    fn both_directions_match_the_sequential_oracle() {
        let opts = PrOptions {
            iters: 12,
            damping: 0.85,
        };
        for g in [gen::rmat(8, 5, 3), gen::complete(32), gen::path(100)] {
            let reference = pagerank_seq(&g, &opts);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for dir in Direction::BOTH {
                    let r = pagerank(&engine, &g, dir, &opts, &probes);
                    let diff = l1_distance(&reference, &r);
                    assert!(diff < 1e-9, "{dir:?} x{threads}: L1 {diff}");
                }
            }
        }
    }

    #[test]
    fn pull_is_bitwise_deterministic_across_thread_counts() {
        let g = gen::rmat(7, 6, 9);
        let opts = PrOptions::default();
        let runs: Vec<Vec<f64>> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                let engine = Engine::new(t);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                pagerank(&engine, &g, Direction::Pull, &opts, &probes)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn push_contends_atomics_pull_stays_clean() {
        let g = gen::rmat(7, 5, 2);
        let engine = Engine::new(4);
        let opts = PrOptions {
            iters: 3,
            damping: 0.85,
        };

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        pagerank(&engine, &g, Direction::Push, &opts, &probes);
        let push = probes.merged();
        assert!(
            push.atomics as usize >= 3 * g.num_arcs(),
            "push issues ≥ one atomic per edge per iteration"
        );

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        pagerank(&engine, &g, Direction::Pull, &opts, &probes);
        let pull = probes.merged();
        assert_eq!(pull.atomics, 0);
        assert_eq!(pull.locks, 0);
        assert!(pull.reads > push.reads, "pull gathers rank + degree");
    }
}
