//! PageRank as a [`Program`] (§3.1/§4.1): dense all-vertices rounds.
//!
//! Every iteration is one phase whose single round consumes the full
//! frontier. The pull gather accumulates neighbor shares into the owned
//! cell — no synchronization, deterministic across thread counts (each
//! vertex's sum runs in neighbor order on one thread). The push update
//! scatters shares through the CAS-loop [`AtomicF64`], genuinely
//! contending the float emulation the paper discusses (§4.1); float
//! addition reorders, so push agrees with the oracle to ε rather than
//! bitwise.

use pp_core::pagerank::PrOptions;
use pp_core::sync::AtomicF64;
use pp_core::Direction;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::Program;
use crate::runner::Runner;

/// PageRank as a vertex program: double-buffered ranks, one phase per
/// iteration.
pub struct PageRankProgram {
    /// Ranks of the previous iteration (read-only during a round).
    pr: Vec<AtomicF64>,
    /// Ranks being accumulated this iteration (pre-filled with the base
    /// teleport term).
    new_pr: Vec<AtomicF64>,
    /// Out-degrees, snapshotted so the kernels need no graph access.
    degree: Vec<u32>,
    base: f64,
    damping: f64,
    iters_left: usize,
}

impl PageRankProgram {
    /// A program running `opts.iters` damped iterations.
    pub fn new(g: &CsrGraph, opts: &PrOptions) -> Self {
        let n = g.num_vertices();
        let base = if n == 0 {
            0.0
        } else {
            (1.0 - opts.damping) / n as f64
        };
        let init = if n == 0 { 0.0 } else { 1.0 / n as f64 };
        Self {
            pr: (0..n).map(|_| AtomicF64::new(init)).collect(),
            new_pr: (0..n).map(|_| AtomicF64::new(base)).collect(),
            degree: g.vertices().map(|v| g.degree(v) as u32).collect(),
            base,
            damping: opts.damping,
            iters_left: opts.iters,
        }
    }
}

impl<P: Probe> EdgeKernel<P> for PageRankProgram {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        probe.read(addr_of_index(&self.pr, u as usize), 8);
        probe.branch_cond();
        let share = self.damping * self.pr[u as usize].load() / self.degree[u as usize] as f64;
        // W(f): float write conflict resolved by the CAS loop; one atomic
        // per attempt (§4.1).
        let attempts = self.new_pr[v as usize].fetch_add(share);
        for _ in 0..attempts {
            probe.atomic_rmw(addr_of_index(&self.new_pr, v as usize), 8);
        }
        false
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        // R: the neighbor's rank and degree (§7.3); the accumulate is an
        // own-cell load/store pair — no synchronization.
        probe.read(addr_of_index(&self.pr, u as usize), 8);
        probe.read(addr_of_index(&self.degree, u as usize), 4);
        let share = self.damping * self.pr[u as usize].load() / self.degree[u as usize] as f64;
        probe.write(addr_of_index(&self.new_pr, v as usize), 8);
        self.new_pr[v as usize].store(self.new_pr[v as usize].load() + share);
        false
    }
}

impl<P: ShardProbe> Program<P> for PageRankProgram {
    type Output = Vec<f64>;

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        if self.iters_left == 0 || g.num_vertices() == 0 {
            self.iters_left = 0;
            Frontier::empty(g.num_vertices())
        } else {
            Frontier::full(g)
        }
    }

    fn next_phase(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        if self.iters_left == 0 {
            return None;
        }
        // One iteration just drained: promote the accumulator.
        std::mem::swap(&mut self.pr, &mut self.new_pr);
        self.iters_left -= 1;
        if self.iters_left == 0 {
            return None;
        }
        let (new_pr, base) = (&self.new_pr, self.base);
        engine.map_vertices(g, probes, |v, _| new_pr[v as usize].store(base));
        Some(Frontier::full(g))
    }

    fn finish(self, _g: &CsrGraph) -> Vec<f64> {
        self.pr.iter().map(AtomicF64::load).collect()
    }
}

/// PageRank in the given direction; `opts` as in the core crate.
pub fn pagerank<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    dir: Direction,
    opts: &PrOptions,
    probes: &ProbeShards<P>,
) -> Vec<f64> {
    Runner::new(engine, probes)
        .policy(DirectionPolicy::Fixed(dir))
        .run(g, PageRankProgram::new(g, opts))
        .output
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::pagerank::{l1_distance, pagerank_seq};
    use pp_graph::gen;
    use pp_telemetry::{CountingProbe, NullProbe};

    #[test]
    fn both_directions_match_the_sequential_oracle() {
        let opts = PrOptions {
            iters: 12,
            damping: 0.85,
        };
        for g in [gen::rmat(8, 5, 3), gen::complete(32), gen::path(100)] {
            let reference = pagerank_seq(&g, &opts);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for dir in Direction::BOTH {
                    let r = pagerank(&engine, &g, dir, &opts, &probes);
                    let diff = l1_distance(&reference, &r);
                    assert!(diff < 1e-9, "{dir:?} x{threads}: L1 {diff}");
                }
            }
        }
    }

    #[test]
    fn pull_is_bitwise_deterministic_across_thread_counts() {
        let g = gen::rmat(7, 6, 9);
        let opts = PrOptions::default();
        let runs: Vec<Vec<f64>> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                let engine = Engine::new(t);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                pagerank(&engine, &g, Direction::Pull, &opts, &probes)
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn one_phase_per_iteration_with_one_dense_round() {
        let g = gen::rmat(7, 5, 4);
        let opts = PrOptions {
            iters: 7,
            damping: 0.85,
        };
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let run = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Pull))
            .run(&g, PageRankProgram::new(&g, &opts));
        assert_eq!(run.report.num_rounds(), 7);
        assert_eq!(run.report.phases, 7);
        assert!(run
            .report
            .rounds
            .iter()
            .all(|s| s.frontier == g.num_vertices()));
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = pp_graph::GraphBuilder::undirected(0).build();
        let engine = Engine::new(1);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let opts = PrOptions {
            iters: 1_000_000,
            damping: 0.85,
        };
        let run = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Pull))
            .run(&g, PageRankProgram::new(&g, &opts));
        assert!(run.output.is_empty());
        assert_eq!(run.report.num_rounds(), 0, "no phantom phases on n = 0");
        assert_eq!(run.report.phases, 0, "zero-round run reports zero phases");
    }

    #[test]
    fn zero_iterations_return_the_uniform_vector() {
        let g = gen::path(10);
        let engine = Engine::new(1);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let opts = PrOptions {
            iters: 0,
            damping: 0.85,
        };
        let r = pagerank(&engine, &g, Direction::Pull, &opts, &probes);
        assert!(r.iter().all(|&x| (x - 0.1).abs() < 1e-15));
    }

    #[test]
    fn push_contends_atomics_pull_stays_clean() {
        let g = gen::rmat(7, 5, 2);
        let engine = Engine::new(4);
        let opts = PrOptions {
            iters: 3,
            damping: 0.85,
        };

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        pagerank(&engine, &g, Direction::Push, &opts, &probes);
        let push = probes.merged();
        assert!(
            push.atomics as usize >= 3 * g.num_arcs(),
            "push issues ≥ one atomic per edge per iteration"
        );

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        pagerank(&engine, &g, Direction::Pull, &opts, &probes);
        let pull = probes.merged();
        assert_eq!(pull.atomics, 0);
        assert_eq!(pull.locks, 0);
        assert!(pull.reads > push.reads, "pull gathers rank + degree");
    }
}
