//! Triangle counting as a [`Program`] (§3.2, Algorithm 2): one dense
//! all-vertices round.
//!
//! The NodeIterator scheme cast into the edge-kernel shape: the push
//! kernel, handed frontier vertex `u` and neighbor `v`, scans `N(u)` and
//! FAAs the *remote* counter `tc[v]` once per common neighbor it finds —
//! over all of `u`'s neighbors that is exactly Algorithm 2's ordered-pair
//! enumeration `(w1, w2) ∈ N(u)²` with its `tc[w1]++` conflict, one FAA
//! per corner hit. The pull kernel counts the same common neighbors into
//! the *own* counter `tc[v]` with a plain write. Both count every triangle
//! twice per corner, halved at [`Program::finish`].
//!
//! Under [`crate::ExecutionMode::PartitionAware`] the default
//! [`EdgeKernel::apply_owned`] (the pull kernel, executed by `v`'s owner)
//! is exactly right: a common-neighbor count is symmetric in `(u, v)` and
//! reads only the immutable adjacency structure, so the owner-computes
//! push issues zero atomics and lands on the identical integer counts.
//!
//! This is the one program whose kernels need the graph itself (adjacency
//! intersection, not a per-edge cell update), so it borrows the
//! [`CsrGraph`] for its lifetime.

use std::sync::atomic::{AtomicU64, Ordering};

use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::Program;
use crate::report::RunReport;
use crate::runner::Runner;

/// Result of an engine triangle count.
#[derive(Clone, Debug)]
pub struct ParTcResult {
    /// Per-vertex triangle counts: `counts[v]` = triangles containing `v`.
    pub counts: Vec<u64>,
    /// Per-round direction/frontier/edge statistics (a single dense round).
    pub report: RunReport,
}

impl ParTcResult {
    /// Total triangles in the graph (each counted once).
    pub fn total(&self) -> u64 {
        // Each triangle contributes 1 to each of its three corners.
        self.counts.iter().sum::<u64>() / 3
    }
}

/// NodeIterator triangle counting as a vertex program: one dense round.
pub struct TcProgram<'g> {
    g: &'g CsrGraph,
    tc: Vec<AtomicU64>,
}

impl<'g> TcProgram<'g> {
    /// A program counting the triangles of `g`.
    pub fn new(g: &'g CsrGraph) -> Self {
        Self {
            g,
            tc: (0..g.num_vertices()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// `adj(w1, w2)` with probe accounting: a binary search over `N(w1)`,
    /// mirroring the instrumented `pp-core` twin.
    #[inline]
    fn adj<P: Probe>(&self, w1: VertexId, w2: VertexId, probe: &P) -> bool {
        let nbrs = self.g.neighbors(w1);
        probe.read(nbrs.as_ptr() as usize, nbrs.len().min(8) * 4);
        let mut lo = 0usize;
        let mut hi = nbrs.len();
        while lo < hi {
            probe.branch_cond();
            let mid = (lo + hi) / 2;
            if nbrs[mid] < w2 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo < nbrs.len() && nbrs[lo] == w2
    }

    /// `|{w2 ∈ N(u) \ {v} : adj(v, w2)}|` — the ordered pairs `(v, w2)` of
    /// `N(u)²` that close a triangle at corner `u`.
    #[inline]
    fn common<P: Probe>(&self, u: VertexId, v: VertexId, probe: &P) -> u64 {
        let mut hits = 0u64;
        for &w2 in self.g.neighbors(u) {
            probe.branch_cond();
            if w2 != v && self.adj(v, w2, probe) {
                hits += 1;
            }
        }
        hits
    }
}

impl<P: Probe> EdgeKernel<P> for TcProgram<'_> {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        // W(i) conflict on tc[v], one FAA per corner hit (§4.2 "We use FAA
        // atomics") — the same event count as the pp-core push twin.
        for _ in 0..self.common(u, v, probe) {
            probe.atomic_rmw(addr_of_index(&self.tc, v as usize), 8);
            probe.branch_uncond();
            self.tc[v as usize].fetch_add(1, Ordering::Relaxed);
        }
        false
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        // Own-cell accumulate: the count is symmetric in (u, v), so this is
        // the same quantity the push kernel scatters — scheduled the other
        // way, with a plain write.
        let hits = self.common(v, u, probe);
        if hits > 0 {
            probe.write(addr_of_index(&self.tc, v as usize), 8);
            let cur = self.tc[v as usize].load(Ordering::Relaxed);
            self.tc[v as usize].store(cur + hits, Ordering::Relaxed);
        }
        false
    }
}

impl<P: ShardProbe> Program<P> for TcProgram<'_> {
    type Output = Vec<u64>;

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        Frontier::full(g)
    }

    fn finish(self, _g: &CsrGraph) -> Vec<u64> {
        // Ordered-pair enumeration sees each triangle twice per corner.
        self.tc.into_iter().map(|c| c.into_inner() / 2).collect()
    }
}

/// Triangle counts under the given direction policy.
pub fn triangle_counts<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    policy: DirectionPolicy,
    probes: &ProbeShards<P>,
) -> ParTcResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, TcProgram::new(g));
    ParTcResult {
        counts: run.output,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::ExecutionMode;
    use pp_core::triangles::triangle_counts_seq;
    use pp_core::Direction;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::{CountingProbe, NullProbe};

    fn policies() -> impl Iterator<Item = DirectionPolicy> {
        DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
    }

    #[test]
    fn matches_sequential_reference_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::rmat(7, 6, seed);
            let expected = triangle_counts_seq(&g);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for policy in policies() {
                    let r = triangle_counts(&engine, &g, policy, &probes);
                    assert_eq!(r.counts, expected, "seed {seed} x{threads} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn analytic_families() {
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        // K5: each vertex in C(4,2) = 6 triangles, C(5,3) = 10 total.
        let k5 = gen::complete(5);
        for policy in policies() {
            let r = triangle_counts(&engine, &k5, policy, &probes);
            assert_eq!(r.counts, vec![6; 5], "{policy:?}");
            assert_eq!(r.total(), 10);
        }
        // Triangle-free families.
        for g in [gen::path(10), gen::star(10), gen::cycle(8)] {
            let r = triangle_counts(&engine, &g, DirectionPolicy::adaptive(), &probes);
            assert_eq!(r.total(), 0);
        }
        // Bowtie: two triangles sharing vertex 2.
        let bow = GraphBuilder::undirected(5)
            .edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .build();
        let r = triangle_counts(&engine, &bow, DirectionPolicy::adaptive(), &probes);
        assert_eq!(r.counts, vec![1, 1, 2, 1, 1]);
        assert_eq!(r.total(), 2);
    }

    #[test]
    fn single_dense_round() {
        let g = gen::rmat(6, 5, 4);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = triangle_counts(&engine, &g, DirectionPolicy::adaptive(), &probes);
        assert_eq!(r.report.phases, 1);
        assert_eq!(r.report.num_rounds(), 1);
        assert_eq!(r.report.rounds[0].frontier, g.num_vertices());
    }

    #[test]
    fn atomic_push_faas_per_corner_hit_and_pa_push_does_not() {
        // §4.2 telemetry on K8: every vertex sees C(7,2) = 21 ordered pairs
        // ×2, all adjacent — 8 × 42 = 336 FAAs under shared-state push. The
        // owner-computes schedule removes every one of them.
        let g = gen::complete(8);
        let engine = Engine::new(4);
        let run_mode = |mode: ExecutionMode| {
            let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
            let run = Runner::new(&engine, &probes)
                .policy(DirectionPolicy::Fixed(Direction::Push))
                .mode(mode)
                .run(&g, TcProgram::new(&g));
            assert_eq!(run.output, vec![21; 8], "K8: C(7,2) triangles/vertex");
            probes.merged()
        };

        let atomic = run_mode(ExecutionMode::Atomic);
        assert_eq!(atomic.atomics, 336, "one FAA per triangle corner hit");
        assert_eq!(atomic.locks, 0);

        let pa = run_mode(ExecutionMode::PartitionAware);
        assert_eq!(pa.atomics, 0, "owner-computes TC push must not FAA");
        assert_eq!(pa.locks, 0);
        assert!(pa.remote_sends > 0, "K8 over 4 parts must cut edges");
    }

    #[test]
    fn empty_and_single_vertex() {
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let empty = GraphBuilder::undirected(0).build();
        assert!(
            triangle_counts(&engine, &empty, DirectionPolicy::adaptive(), &probes)
                .counts
                .is_empty()
        );
        let one = GraphBuilder::undirected(1).build();
        let r = triangle_counts(&engine, &one, DirectionPolicy::adaptive(), &probes);
        assert_eq!(r.counts, vec![0]);
    }
}
