//! Bit-parallel multi-source BFS (MS-BFS): one traversal advances up to 64
//! BFS frontiers at once.
//!
//! A [`SourceBatch`] maps each source to a *lane* — one bit in a `u64` mask
//! word — and the program keeps three mask words per vertex:
//!
//! * `visit[v]` — lanes whose BFS has reached `v` (monotone union),
//! * `cur[v]` — lanes for which `v` is in the round's frontier
//!   (round-immutable: written only by the pre-round fold),
//! * `visit_next[v]` — lanes arriving at `v` during the round.
//!
//! Push ORs `cur[u] & !visit[v]` into `visit_next[v]` with a single
//! `fetch_or` per touched edge — 64 frontier advances for the price of one
//! atomic. Pull gathers the same masks into `v`'s own cell with plain
//! writes, and the default [`EdgeKernel::apply_owned`] (pull gated by the
//! pull candidate) makes the §5 owner-computes path work unchanged: the
//! source read (`cur[u]`) is a round-immutable snapshot, exactly what the
//! delivery-phase timing contract requires, so PartitionAware MS-BFS stays
//! zero-RMW.
//!
//! The scheduler-visible [`Frontier`] is the *union* of the per-lane
//! frontiers, so the [`crate::DirectionPolicy`] steers on the batch's
//! aggregate `|F|`/`|E_F|` with no policy changes. Per-lane depths are
//! extracted at the pre-round fold (where discovery rounds are known
//! exactly), and every lane's level vector is bit-equal to the
//! corresponding single-source [`crate::algo::bfs`] run.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use pp_core::bfs::UNVISITED;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{Program, RoundCtx};
use crate::report::{RunReport, SourceStat};
use crate::runner::Runner;

/// Lane width of a batch: sources per run, one bit per lane in the mask
/// words.
pub const MAX_LANES: usize = 64;

/// An ordered, deduplicated batch of at most [`MAX_LANES`] sources; lane
/// `l` is `sources()[l]` and bit `l` in every mask word. Duplicates are
/// folded onto their first occurrence, preserving lane order.
#[derive(Clone, Debug)]
pub struct SourceBatch {
    sources: Vec<VertexId>,
}

impl SourceBatch {
    /// A batch over the distinct vertices of `sources`, in first-occurrence
    /// order. Panics if a source is out of range, the list is empty, or
    /// more than [`MAX_LANES`] distinct sources remain — callers that take
    /// untrusted input validate first (`registry::AlgoSpec::validate`).
    pub fn new(g: &CsrGraph, sources: &[VertexId]) -> Self {
        let n = g.num_vertices();
        let mut uniq: Vec<VertexId> = Vec::new();
        for &s in sources {
            assert!((s as usize) < n, "source {s} out of range");
            if !uniq.contains(&s) {
                uniq.push(s);
            }
        }
        assert!(!uniq.is_empty(), "a source batch needs at least one source");
        assert!(
            uniq.len() <= MAX_LANES,
            "a source batch holds at most {MAX_LANES} distinct sources"
        );
        Self { sources: uniq }
    }

    /// The deduplicated sources, lane-ordered: lane `l` traverses from
    /// `sources()[l]`.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Number of lanes in use (≥ 1, ≤ [`MAX_LANES`]).
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Never true — `new` rejects empty batches — but keeps the `len`
    /// convention.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Mask with every in-use lane bit set.
    pub fn full_mask(&self) -> u64 {
        if self.sources.len() >= MAX_LANES {
            u64::MAX
        } else {
            (1u64 << self.sources.len()) - 1
        }
    }
}

/// MS-BFS as a vertex program: per-vertex lane-mask words plus per-lane
/// depth extraction (see the module docs for the three-word scheme).
pub struct MsBfsProgram {
    batch: SourceBatch,
    /// [`SourceBatch::full_mask`], cached for the pull-candidate gate.
    full: u64,
    /// Lanes that have reached `v` (monotone union, advanced at the fold).
    visit: Vec<AtomicU64>,
    /// Lanes arriving at `v` this round (merged by the edge kernels,
    /// consumed and cleared by the next fold).
    visit_next: Vec<AtomicU64>,
    /// Lanes for which `v` is in the current frontier (round-immutable).
    cur: Vec<AtomicU64>,
    /// `depth[l * n + v]`: BFS level of `v` in lane `l` ([`UNVISITED`]
    /// until lane `l` reaches `v`).
    depth: Vec<AtomicU32>,
    /// Union of the lane masks folded this round (the round's active
    /// lanes).
    round_lanes: u64,
    /// Rounds in which each lane had frontier vertices.
    rounds_active: Vec<u32>,
    /// Last round index at which each lane discovered vertices — the
    /// lane's eccentricity from its source once the run drains.
    last_depth: Vec<u32>,
}

impl MsBfsProgram {
    /// A program traversing all lanes of `batch` simultaneously.
    pub fn new(g: &CsrGraph, batch: SourceBatch) -> Self {
        let n = g.num_vertices();
        let lanes = batch.len();
        Self {
            full: batch.full_mask(),
            visit: (0..n).map(|_| AtomicU64::new(0)).collect(),
            visit_next: (0..n).map(|_| AtomicU64::new(0)).collect(),
            cur: (0..n).map(|_| AtomicU64::new(0)).collect(),
            depth: (0..n * lanes).map(|_| AtomicU32::new(UNVISITED)).collect(),
            round_lanes: 0,
            rounds_active: vec![0; lanes],
            last_depth: vec![0; lanes],
            batch,
        }
    }
}

impl<P: Probe> EdgeKernel<P> for MsBfsProgram {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        probe.read(addr_of_index(&self.visit, v as usize), 8);
        probe.branch_cond();
        // ORDERING: Relaxed — `cur[u]` is round-immutable (written only by
        // the pre-round fold, behind the round barrier) and `visit[v]` is
        // likewise advanced only at the fold, so both loads see frozen
        // snapshots; a stale read cannot invent lanes.
        let delta = self.cur[u as usize].load(Ordering::Relaxed)
            & !self.visit[v as usize].load(Ordering::Relaxed);
        if delta == 0 {
            return false;
        }
        // W: write conflict — many frontier vertices push lanes into the
        // same `v` concurrently; one OR merges the masks (§4.3).
        probe.atomic_rmw(addr_of_index(&self.visit_next, v as usize), 8);
        // ORDERING: Relaxed — the fetch_or is a commutative, idempotent
        // mask merge; its consumer (the next fold) runs after the round
        // barrier, and no other data is published through this word.
        let prev = self.visit_next[v as usize].fetch_or(delta, Ordering::Relaxed);
        // Exactly-once activation: the first nonzero merge into an empty
        // word claims `v` for the next frontier.
        prev == 0
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        probe.branch_cond();
        // ORDERING: Relaxed — `cur[u]` and `visit[v]` are round-immutable
        // here (fold-written, see push_update); `visit_next[v]` is `v`'s
        // own cell, single-writer in a pull round and in owner-computes
        // delivery, so plain load/OR/store suffices.
        let delta = self.cur[u as usize].load(Ordering::Relaxed)
            & !self.visit[v as usize].load(Ordering::Relaxed);
        if delta == 0 {
            return false;
        }
        // ORDERING: Relaxed — own-cell read-modify-write, single writer.
        let have = self.visit_next[v as usize].load(Ordering::Relaxed);
        let fresh = delta & !have;
        if fresh == 0 {
            return false;
        }
        probe.write(addr_of_index(&self.visit_next, v as usize), 8);
        // ORDERING: Relaxed — own-cell store; consumed by the next fold.
        self.visit_next[v as usize].store(have | fresh, Ordering::Relaxed);
        true
    }

    fn pull_candidate(&self, v: VertexId, probe: &P) -> bool {
        probe.branch_cond();
        // ORDERING: Relaxed — `visit[v]` is a round-immutable snapshot
        // during edge kernels (only the fold advances it).
        self.visit[v as usize].load(Ordering::Relaxed) != self.full
    }

    fn pull_saturates(&self) -> bool {
        // Unlike single-source BFS, a pull scan must visit *every* frontier
        // neighbor: each may carry lanes the others do not.
        false
    }
}

impl<P: ShardProbe> Program<P> for MsBfsProgram {
    type Output = Vec<Vec<u32>>;

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        let mut verts: Vec<VertexId> = Vec::with_capacity(self.batch.len());
        for (l, &s) in self.batch.sources.iter().enumerate() {
            // Seed the arrival word; round 0's fold stamps depth 0 and
            // moves the bit into `visit`/`cur`.
            *self.visit_next[s as usize].get_mut() |= 1u64 << l;
            verts.push(s);
        }
        verts.sort_unstable();
        Frontier::from_vertices(g, verts)
    }

    /// The pre-round fold: move each frontier vertex's arrivals into
    /// `visit`/`cur`, stamp per-lane depths (discovery round = BFS level),
    /// and record the round's active-lane union. Completeness: a vertex has
    /// nonzero `visit_next` iff an edge kernel activated it last round (or
    /// it is a seeded source), and exactly those vertices form `frontier` —
    /// so the fold never misses an arrival.
    fn begin_round(
        &mut self,
        ctx: RoundCtx,
        g: &CsrGraph,
        frontier: &mut Frontier,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) {
        let n = g.num_vertices();
        let round = ctx.round;
        let visit = &self.visit;
        let visit_next = &self.visit_next;
        let cur = &self.cur;
        let depth = &self.depth;
        let union = AtomicU64::new(0);
        engine.vertex_map(g, frontier, probes, |v, probe| {
            let vi = v as usize;
            probe.read(addr_of_index(visit_next, vi), 8);
            // ORDERING: Relaxed — the round barrier has passed and
            // vertex_map hands each frontier vertex to exactly one thread,
            // so every word of `v` read or written here is single-owner.
            let seen = visit[vi].load(Ordering::Relaxed);
            let d = visit_next[vi].load(Ordering::Relaxed) & !seen;
            probe.write(addr_of_index(cur, vi), 8);
            // ORDERING: Relaxed — own-cell stores (single owner, above);
            // the edge kernels that read them run after this fold's
            // barrier, which orders the handoff.
            visit[vi].store(seen | d, Ordering::Relaxed);
            cur[vi].store(d, Ordering::Relaxed);
            visit_next[vi].store(0, Ordering::Relaxed);
            let mut m = d;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                // ORDERING: Relaxed — depth cell (l, v) has exactly one
                // writer ever: lane l discovers v exactly once.
                depth[l * n + vi].store(round, Ordering::Relaxed);
                m &= m - 1;
            }
            // ORDERING: Relaxed — commutative mask union, consumed only
            // after the vertex_map barrier below.
            union.fetch_or(d, Ordering::Relaxed);
        });
        let mask = union.into_inner();
        self.round_lanes = mask;
        for l in 0..self.batch.len() {
            if mask >> l & 1 == 1 {
                self.rounds_active[l] += 1;
                self.last_depth[l] = round;
            }
        }
    }

    fn lanes_active(&self) -> Option<u32> {
        Some(self.round_lanes.count_ones())
    }

    fn source_stats(&self) -> Vec<SourceStat> {
        self.batch
            .sources
            .iter()
            .enumerate()
            .map(|(l, &s)| SourceStat {
                source: s,
                rounds_active: self.rounds_active[l],
                depth: self.last_depth[l],
            })
            .collect()
    }

    fn finish(self, g: &CsrGraph) -> Self::Output {
        let n = g.num_vertices();
        let depth: Vec<u32> = self.depth.into_iter().map(AtomicU32::into_inner).collect();
        depth.chunks(n).map(<[u32]>::to_vec).collect()
    }
}

/// Result of a batched MS-BFS run.
#[derive(Clone, Debug)]
pub struct MsBfsResult {
    /// The deduplicated sources, lane-ordered.
    pub sources: Vec<VertexId>,
    /// `level[l][v]`: distance from `sources[l]` to `v` ([`UNVISITED`] if
    /// unreached) — bit-equal to the single-source BFS level vector.
    pub level: Vec<Vec<u32>>,
    /// Per-round direction/frontier/lane statistics (one run for the whole
    /// batch; `report.sources` carries the per-lane axis).
    pub report: RunReport,
}

impl MsBfsResult {
    /// Vertices lane `l` reached (including its source).
    pub fn reached(&self, l: usize) -> usize {
        self.level[l].iter().filter(|&&d| d != UNVISITED).count()
    }
}

/// MS-BFS over `sources` (deduplicated, ≤ [`MAX_LANES`] distinct) under the
/// given direction policy.
pub fn ms_bfs<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    sources: &[VertexId],
    policy: DirectionPolicy,
    probes: &ProbeShards<P>,
) -> MsBfsResult {
    let batch = SourceBatch::new(g, sources);
    let sources = batch.sources().to_vec();
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, MsBfsProgram::new(g, batch));
    MsBfsResult {
        sources,
        level: run.output,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::ExecutionMode;
    use pp_core::Direction;
    use pp_graph::{gen, stats};
    use pp_telemetry::{CountingProbe, NullProbe};

    fn oracle(g: &CsrGraph, s: VertexId) -> Vec<u32> {
        stats::bfs_levels(g, s).0
    }

    #[test]
    fn batch_dedupes_and_preserves_lane_order() {
        let g = gen::path(16);
        let b = SourceBatch::new(&g, &[5, 9, 5, 9, 1]);
        assert_eq!(b.sources(), &[5, 9, 1]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.full_mask(), 0b111);
        let full = SourceBatch::new(&g, &(0..16).collect::<Vec<_>>());
        assert_eq!(full.full_mask(), (1u64 << 16) - 1);
    }

    #[test]
    fn every_lane_is_bit_equal_to_its_single_source_run() {
        let g = gen::rmat(8, 5, 7);
        let sources: Vec<VertexId> = vec![0, 3, 7, 11, 42, 100, 5, 9, 1, 2, 64, 33];
        let expected: Vec<Vec<u32>> = sources.iter().map(|&s| oracle(&g, s)).collect();
        for threads in [1, 2, 8] {
            for policy in [
                DirectionPolicy::Fixed(Direction::Push),
                DirectionPolicy::Fixed(Direction::Pull),
                DirectionPolicy::adaptive(),
            ] {
                for (_, mode) in ExecutionMode::sweep() {
                    let engine = Engine::new(threads);
                    let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                    let run = Runner::new(&engine, &probes)
                        .policy(policy)
                        .mode(mode)
                        .run(&g, MsBfsProgram::new(&g, SourceBatch::new(&g, &sources)));
                    for (l, exp) in expected.iter().enumerate() {
                        assert_eq!(
                            &run.output[l], exp,
                            "lane {l} (source {}) {policy:?} {mode:?} t={threads}",
                            sources[l]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn report_carries_lane_and_source_axes() {
        let g = gen::rmat(8, 5, 7);
        let sources: Vec<VertexId> = vec![0, 17, 99];
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = ms_bfs(&engine, &g, &sources, DirectionPolicy::adaptive(), &probes);
        assert!(r.report.rounds.iter().all(|s| s.lanes_active >= 1));
        assert!(
            r.report.rounds[0].lanes_active == 3,
            "all lanes start active"
        );
        assert_eq!(r.report.sources.len(), 3);
        for (l, stat) in r.report.sources.iter().enumerate() {
            assert_eq!(stat.source, sources[l]);
            assert!(stat.rounds_active >= 1);
            let max_level = r.level[l]
                .iter()
                .filter(|&&d| d != UNVISITED)
                .max()
                .copied()
                .unwrap();
            assert_eq!(stat.depth, max_level, "lane {l} depth is its max level");
            assert!(r.reached(l) >= 1);
        }
    }

    #[test]
    fn partition_aware_push_stays_zero_rmw() {
        let g = gen::rmat(8, 5, 7);
        let sources: Vec<VertexId> = (0..24).map(|i| i * 7 % 256).collect();
        let engine = Engine::new(4);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let run = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .mode(ExecutionMode::PartitionAware)
            .run(&g, MsBfsProgram::new(&g, SourceBatch::new(&g, &sources)));
        let counts = probes.merged();
        assert_eq!(counts.atomics, 0, "owner-computes mask merge must not RMW");
        assert!(counts.remote_sends > 0, "lanes must cross part boundaries");
        assert!(run.report.remote_updates() > 0);
    }

    #[test]
    fn pull_rounds_are_synchronization_free() {
        let g = gen::rmat(8, 5, 7);
        let engine = Engine::new(2);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        ms_bfs(
            &engine,
            &g,
            &[0, 9, 33],
            DirectionPolicy::Fixed(Direction::Pull),
            &probes,
        );
        assert_eq!(probes.merged().atomics, 0, "pull MS-BFS issues no RMW");
    }

    #[test]
    fn batched_traversal_touches_far_fewer_edges_than_sequential() {
        let g = gen::rmat(10, 8, 7);
        let n = g.num_vertices() as VertexId;
        let sources: Vec<VertexId> = (0..64).map(|i| i * 13 % n).collect();
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let policy = DirectionPolicy::Fixed(Direction::Push);
        let batched = ms_bfs(&engine, &g, &sources, policy, &probes)
            .report
            .edges_traversed();
        let sequential: u64 = sources
            .iter()
            .map(|&s| {
                crate::algo::bfs::bfs(&engine, &g, s, policy, &probes)
                    .report
                    .edges_traversed()
            })
            .sum();
        assert!(
            batched * 4 < sequential,
            "batched {batched} vs sequential {sequential}"
        );
    }
}
