//! Graph algorithms as [`crate::program::Program`]s: BFS, PageRank,
//! Δ-stepping SSSP, connected components, k-core decomposition, community
//! label propagation, Boman-style coloring, triangle counting, Boruvka
//! MST, and Brandes betweenness centrality — the paper's full workload
//! table, zero round loops. Each module supplies per-vertex state, one
//! `push_update`/`pull_gather` kernel pair, and the phase structure; the
//! shared loop in [`crate::runner::Runner`] does everything else, so all
//! of them run under any [`crate::policy::DirectionPolicy`] and either
//! [`crate::partitioned::ExecutionMode`] at any thread count.
//!
//! The multi-kernel algorithms showcase the per-phase lifecycle
//! ([`crate::program::PhaseKernel`]): MST alternates an edge sweep with
//! vertex-step merge phases, and BC runs a forward/backward kernel state
//! machine (see each module's docs).
//!
//! The sequential/rayon implementations in `pp-core` remain the reference
//! oracles; the integration tests assert bit-equality (ε-equality for
//! PageRank's and BC's floats) against them at several thread counts.

pub mod bc;
pub mod bfs;
pub mod coloring;
pub mod components;
pub mod kcore;
pub mod labelprop;
pub mod msbfs;
pub mod mst;
pub mod pagerank;
pub mod sssp;
pub mod triangles;
