//! Graph algorithms as [`crate::program::Program`]s: BFS, PageRank,
//! Δ-stepping SSSP, connected components, k-core decomposition, community
//! label propagation, and Boman-style coloring — seven algorithms, zero
//! round loops. Each module supplies per-vertex state, one
//! `push_update`/`pull_gather` kernel pair, and the phase structure; the
//! shared loop in [`crate::runner::Runner`] does everything else, so all
//! of them run under any [`crate::policy::DirectionPolicy`] at any thread
//! count.
//!
//! The sequential/rayon implementations in `pp-core` remain the reference
//! oracles; the integration tests assert bit-equality (ε-equality for
//! PageRank's floats) against them at several thread counts.

pub mod bfs;
pub mod coloring;
pub mod components;
pub mod kcore;
pub mod labelprop;
pub mod pagerank;
pub mod sssp;
