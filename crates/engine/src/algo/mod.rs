//! Graph algorithms ported onto the engine: BFS, PageRank, and Δ-stepping
//! SSSP, each expressed as [`crate::ops::EdgeKernel`]s/vertex maps so one
//! code path serves both directions and any [`crate::policy`].
//!
//! The sequential/rayon implementations in `pp-core` remain the reference
//! oracles; the integration tests assert bit-equality (ε-equality for
//! PageRank's floats) against them at several thread counts.

pub mod bfs;
pub mod pagerank;
pub mod sssp;
