//! Δ-stepping SSSP as a [`Program`] (§3.4/§4.4).
//!
//! Phases are the distance buckets, walked in order by
//! [`Program::next_phase`]; within a phase, rounds repeat until the bucket
//! stops improving, exactly like the core variants. The frontier of a round
//! is the set of bucket members that changed in the previous round; the
//! kernel relaxes with CAS-min when pushing and with own-cell mins when
//! pulling, and the [`DirectionPolicy`] may switch direction phase by
//! phase — a schedule neither core variant offers.

use std::sync::atomic::{AtomicU64, Ordering};

use pp_core::sssp::{SsspOptions, INF};
use pp_core::sync::atomic_min_u64;
use pp_core::Direction;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{frontier_where, Program};
use crate::report::RunReport;
use crate::runner::Runner;

/// Per-epoch trace of an engine Δ-stepping run.
#[derive(Clone, Copy, Debug)]
pub struct ParEpoch {
    /// Bucket index (distances in `[bΔ, (b+1)Δ)`).
    pub bucket: u64,
    /// Phases (rounds) until the bucket settled.
    pub phases: usize,
    /// Pull rounds among them (the adaptive policy's choices).
    pub pull_phases: usize,
}

/// Result of an engine Δ-stepping run.
#[derive(Clone, Debug)]
pub struct ParSsspResult {
    /// Shortest distance from the root ([`INF`] if unreachable).
    pub dist: Vec<u64>,
    /// Per-epoch trace (one entry per bucket the run settled).
    pub epochs: Vec<ParEpoch>,
    /// Per-round direction/frontier/edge statistics.
    pub report: RunReport,
}

/// Δ-stepping as a vertex program: one phase per distance bucket.
pub struct SsspProgram {
    root: VertexId,
    dist: Vec<AtomicU64>,
    /// Current bucket index.
    b: u64,
    delta: u64,
    /// Bucket index of each executed phase, in order.
    buckets: Vec<u64>,
}

impl SsspProgram {
    /// A program computing shortest distances from `root` with bucket
    /// width `opts.delta`.
    pub fn new(g: &CsrGraph, root: VertexId, opts: &SsspOptions) -> Self {
        assert!(g.is_weighted(), "Δ-stepping requires edge weights");
        assert!(opts.delta >= 1, "Δ must be at least 1");
        let n = g.num_vertices();
        assert!((root as usize) < n, "root out of range");
        Self {
            root,
            dist: (0..n).map(|_| AtomicU64::new(INF)).collect(),
            b: 0,
            delta: opts.delta,
            buckets: Vec::new(),
        }
    }

    /// Every current member of bucket `b`, as a frontier.
    fn bucket_members(&self, g: &CsrGraph) -> Frontier {
        frontier_where(g, |v| {
            let d = self.dist[v as usize].load(Ordering::Relaxed);
            d != INF && d / self.delta == self.b
        })
    }
}

impl<P: Probe> EdgeKernel<P> for SsspProgram {
    fn push_update(&self, u: VertexId, v: VertexId, w: Weight, probe: &P) -> bool {
        let du = self.dist[u as usize].load(Ordering::Relaxed);
        let cand = du.saturating_add(w as u64);
        probe.read(addr_of_index(&self.dist, v as usize), 8);
        probe.branch_cond();
        // W(i): write conflict on d[v]; CAS-min (§4.4).
        let (updated, attempts) = atomic_min_u64(&self.dist[v as usize], cand);
        for _ in 0..attempts {
            probe.atomic_rmw(addr_of_index(&self.dist, v as usize), 8);
        }
        // Only same-bucket improvements re-activate within this epoch;
        // later buckets are rediscovered from the distance array.
        updated && cand / self.delta == self.b
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, w: Weight, probe: &P) -> bool {
        // R: read conflict on d[u] (§4.4); write only to the owned d[v].
        probe.read(addr_of_index(&self.dist, u as usize), 8);
        probe.branch_cond();
        let cand = self.dist[u as usize]
            .load(Ordering::Relaxed)
            .saturating_add(w as u64);
        let dv = self.dist[v as usize].load(Ordering::Relaxed);
        if cand < dv {
            probe.write(addr_of_index(&self.dist, v as usize), 8);
            self.dist[v as usize].store(cand, Ordering::Relaxed);
            cand / self.delta == self.b
        } else {
            false
        }
    }

    fn pull_candidate(&self, v: VertexId, probe: &P) -> bool {
        probe.branch_cond();
        // Only vertices that can still improve relative to this bucket
        // participate as pull targets (Algorithm 4 line 23).
        self.dist[v as usize].load(Ordering::Relaxed) > self.b * self.delta
    }

    fn may_activate_twice(&self) -> bool {
        // Every successful CAS-min improvement of one vertex returns true;
        // edge_map folds the repeats.
        true
    }
}

impl<P: ShardProbe> Program<P> for SsspProgram {
    type Output = (Vec<u64>, Vec<u64>);

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        self.dist[self.root as usize].store(0, Ordering::Relaxed);
        self.buckets.push(0);
        self.bucket_members(g)
    }

    fn next_phase(
        &mut self,
        g: &CsrGraph,
        _engine: &Engine,
        _probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        // Next unsettled bucket, straight from the distance array.
        let next = (0..g.num_vertices())
            .filter_map(|v| {
                let d = self.dist[v].load(Ordering::Relaxed);
                (d != INF && d / self.delta > self.b).then_some(d / self.delta)
            })
            .min()?;
        self.b = next;
        self.buckets.push(next);
        Some(self.bucket_members(g))
    }

    fn finish(self, _g: &CsrGraph) -> Self::Output {
        (
            self.dist.into_iter().map(AtomicU64::into_inner).collect(),
            self.buckets,
        )
    }
}

/// Δ-stepping from `root` under the given direction policy.
pub fn sssp_delta<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    root: VertexId,
    policy: DirectionPolicy,
    opts: &SsspOptions,
    probes: &ProbeShards<P>,
) -> ParSsspResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, SsspProgram::new(g, root, opts));
    let (dist, buckets) = run.output;
    let epochs = buckets
        .iter()
        .enumerate()
        .map(|(phase, &bucket)| {
            let rounds = run.report.phase_rounds(phase as u32);
            let (mut phases, mut pull_phases) = (0usize, 0usize);
            for s in rounds {
                phases += 1;
                if s.dir == Direction::Pull {
                    pull_phases += 1;
                }
            }
            ParEpoch {
                bucket,
                phases,
                pull_phases,
            }
        })
        .collect();
    ParSsspResult {
        dist,
        epochs,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::sssp::dijkstra;
    use pp_graph::gen;
    use pp_telemetry::{CountingProbe, NullProbe};

    fn weighted_graphs() -> Vec<CsrGraph> {
        vec![
            gen::with_random_weights(&gen::path(50), 1, 20, 1),
            gen::with_random_weights(&gen::rmat(7, 4, 5), 1, 50, 2),
            gen::with_random_weights(&gen::complete(24), 1, 100, 4),
        ]
    }

    #[test]
    fn matches_dijkstra_in_every_mode_and_thread_count() {
        for g in weighted_graphs() {
            let reference = dijkstra(&g, 0);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for delta in [1u64, 16, 1 << 12] {
                    for policy in [
                        DirectionPolicy::Fixed(Direction::Push),
                        DirectionPolicy::Fixed(Direction::Pull),
                        DirectionPolicy::adaptive(),
                    ] {
                        let r = sssp_delta(&engine, &g, 0, policy, &SsspOptions { delta }, &probes);
                        assert_eq!(r.dist, reference, "Δ={delta} x{threads} {policy:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn push_counts_cas_pull_counts_none() {
        let g = gen::with_random_weights(&gen::rmat(7, 4, 9), 1, 30, 7);
        let engine = Engine::new(2);
        let opts = SsspOptions { delta: 16 };

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        sssp_delta(
            &engine,
            &g,
            0,
            DirectionPolicy::Fixed(Direction::Push),
            &opts,
            &probes,
        );
        assert!(probes.merged().atomics > 0, "push relaxations CAS-min");

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        sssp_delta(
            &engine,
            &g,
            0,
            DirectionPolicy::Fixed(Direction::Pull),
            &opts,
            &probes,
        );
        assert_eq!(probes.merged().atomics, 0, "pull is synchronization-free");
    }

    #[test]
    fn epochs_walk_buckets_in_order() {
        let g = gen::with_random_weights(&gen::path(40), 1, 9, 3);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = sssp_delta(
            &engine,
            &g,
            0,
            DirectionPolicy::Fixed(Direction::Push),
            &SsspOptions { delta: 8 },
            &probes,
        );
        assert!(r.epochs.windows(2).all(|w| w[0].bucket < w[1].bucket));
        assert!(r.epochs.iter().all(|e| e.phases >= 1));
        assert_eq!(r.report.phases as usize, r.epochs.len());
    }
}
