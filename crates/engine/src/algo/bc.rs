//! Brandes betweenness centrality as a [`Program`] (§3.5, Algorithm 5) —
//! a forward/backward kernel state machine over the per-phase lifecycle,
//! with the forward σ sweep batched over *waves* of up to 64 sources
//! (PR 10, same lane calculus as [`crate::algo::msbfs`]).
//!
//! Sources `0..limit` are processed in waves of [`MAX_LANES`]; within a
//! wave, source `wave_base + l` owns lane bit `l`. The run alternates two
//! kernel families, dispatched on the program's internal forward/backward
//! mode (advanced by [`Program::next_phase`], so the `&self` kernels only
//! ever see settled state):
//!
//! * **Forward** — *one phase per wave* whose rounds are the union BFS
//!   levels, counting shortest-path multiplicities σ per `(vertex, lane)`.
//!   Per-vertex mask words carry lane membership: `visit` (lanes settled),
//!   `cur_mask` (lanes whose frontier the round consumes — written only by
//!   the pre-round fold, hence round-immutable) and `visit_next` (lanes
//!   arriving). Push scatters σ with one FAA per arriving lane and claims
//!   discovery with a mask `fetch_or` (the §4.5 W(i) conflicts, amortized
//!   across the wave); pull gathers every frontier parent's per-lane σ
//!   into owned cells. The fold in `begin_round` also records each lane's
//!   level frontier — the structure the backward walk needs.
//! * **Backward** — per *lane*, one phase per level, deepest first,
//!   folding partial dependencies `δ[v] += σ[v]/σ[w] · (1 + δ[w])` down
//!   that lane's shortest-path DAG. The push side scatters
//!   *floating-point* partials — the conflict class the paper highlights
//!   (§4.9), resolved here with the CAS-loop [`AtomicF64`] (each attempt
//!   counted as an atomic); the pull side reads finished successor cells
//!   and writes only its own δ.
//!
//! Batching fixes the one blemish the single-source program had: its
//! forward pull gate ("still unvisited") was *mutated by the gather*, so
//! the default owner-computes [`EdgeKernel::apply_owned`] would have
//! dropped σ contributions and a hand-written override was required. The
//! batched gate (`cur_mask[u] & !visit[v]`) reads only round-immutable
//! words, so the default pull-delegating apply is correct as-is under
//! [`crate::ExecutionMode::PartitionAware`] — owner-exclusive plain
//! writes, zero RMWs, no override.
//!
//! Push float accumulation reorders, so scores match the sequential
//! Brandes oracle to ε rather than bitwise (pull is deterministic: σ is
//! integral and δ folds in neighbor order into owned cells).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use pp_core::bc::BcOptions;
use pp_core::bfs::UNVISITED;
use pp_core::sync::AtomicF64;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::algo::msbfs::MAX_LANES;
use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{Program, RoundCtx};
use crate::report::RunReport;
use crate::runner::Runner;

/// Result of an engine betweenness computation.
#[derive(Clone, Debug)]
pub struct ParBcResult {
    /// Centrality scores (undirected convention: each unordered pair
    /// counted once).
    pub scores: Vec<f64>,
    /// Per-round statistics: per wave, one forward phase (rounds = union
    /// levels) followed, per lane, by one backward phase per level,
    /// deepest first.
    pub report: RunReport,
}

/// Which sweep the kernels currently implement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BcMode {
    /// Batched σ-counting BFS over the wave's lanes.
    Forward,
    /// Dependency accumulation for one lane; `cur` is the *target* level
    /// receiving from the `cur + 1` frontier.
    Backward,
}

/// Brandes BC as a vertex program: a forward/backward kernel state machine
/// whose forward sweeps run [`MAX_LANES`]-wide waves of sources.
pub struct BcProgram {
    /// Number of sources ([`BcOptions::max_sources`]-capped).
    limit: usize,
    n: usize,
    /// First source of the current wave.
    wave_base: usize,
    /// Lanes in the current wave (≤ [`MAX_LANES`]).
    wave_len: usize,
    /// Mask with the wave's `wave_len` low bits set.
    full: u64,
    /// Backward: the lane whose dependencies are being accumulated.
    lane: usize,
    mode: BcMode,
    /// Forward: union levels recorded so far (the level the next fold
    /// stamps); backward: target level.
    cur: u32,
    /// Lanes settled at any consumed level (round-immutable during a
    /// round: only the pre-round fold writes it).
    visit: Vec<AtomicU64>,
    /// Lanes arriving this round (drained by the next fold).
    visit_next: Vec<AtomicU64>,
    /// Lanes whose current frontier contains the vertex (fold-written,
    /// round-immutable — what makes the default owner-computes apply
    /// safe here).
    cur_mask: Vec<AtomicU64>,
    /// Per-`(lane, vertex)` multiplicities, lane-major: `σ_l(v)` is
    /// `sigma[l * n + v]`.
    sigma: Vec<AtomicU64>,
    /// Per-`(lane, vertex)` BFS level, lane-major, `UNVISITED` when the
    /// lane never reaches the vertex.
    level: Vec<AtomicU32>,
    delta: Vec<AtomicF64>,
    /// Accumulated scores across finished lanes.
    scores: Vec<f64>,
    /// The wave's per-lane per-level frontiers, recorded by the forward
    /// folds; `wave_levels[l][r]` is lane `l`'s level-`r` frontier.
    wave_levels: Vec<Vec<Vec<VertexId>>>,
    /// Lanes concurrently in flight this round (forward: wave lanes with
    /// arrivals; backward: 1).
    round_lanes: u32,
}

impl BcProgram {
    /// A program accumulating dependencies from sources `0..limit`.
    pub fn new(g: &CsrGraph, opts: &BcOptions) -> Self {
        let n = g.num_vertices();
        let limit = opts.max_sources.unwrap_or(n).min(n);
        let cap = limit.min(MAX_LANES);
        Self {
            limit,
            n,
            wave_base: 0,
            wave_len: 0,
            full: 0,
            lane: 0,
            mode: BcMode::Forward,
            cur: 0,
            visit: (0..n).map(|_| AtomicU64::new(0)).collect(),
            visit_next: (0..n).map(|_| AtomicU64::new(0)).collect(),
            cur_mask: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sigma: (0..n * cap).map(|_| AtomicU64::new(0)).collect(),
            level: (0..n * cap).map(|_| AtomicU32::new(UNVISITED)).collect(),
            delta: (0..n).map(|_| AtomicF64::new(0.0)).collect(),
            scores: vec![0.0; n],
            wave_levels: (0..cap).map(|_| Vec::new()).collect(),
            round_lanes: 0,
        }
    }

    /// The backward lane's level of `v`.
    #[inline]
    fn lv(&self, v: VertexId) -> u32 {
        // ORDERING: Relaxed — levels are stamped by the forward folds and
        // immutable throughout the backward walk.
        self.level[self.lane * self.n + v as usize].load(Ordering::Relaxed)
    }

    /// The backward contribution of successor `u` to predecessor `v` in
    /// the current lane.
    #[inline]
    fn partial(&self, v: VertexId, u: VertexId) -> f64 {
        let base = self.lane * self.n;
        // ORDERING: Relaxed — σ settled when the wave's forward sweep
        // drained; the backward phases only read it.
        let su = self.sigma[base + u as usize].load(Ordering::Relaxed) as f64;
        self.sigma[base + v as usize].load(Ordering::Relaxed) as f64
            * ((1.0 + self.delta[u as usize].load()) / su)
    }

    /// Seed the wave's sources (lane `l` ↔ source `wave_base + l`) and
    /// hand back their frontier.
    fn seed_wave(&mut self, g: &CsrGraph) -> Frontier {
        self.mode = BcMode::Forward;
        self.cur = 0;
        self.lane = 0;
        let mut sources = Vec::with_capacity(self.wave_len);
        for l in 0..self.wave_len {
            let s = self.wave_base + l;
            *self.visit_next[s].get_mut() |= 1 << l;
            *self.sigma[l * self.n + s].get_mut() = 1;
            sources.push(s as VertexId);
        }
        Frontier::from_vertices(g, sources)
    }

    /// Fold the finished lane's dependencies into the scores and clear δ
    /// for the next lane.
    fn fold_lane_scores<P: ShardProbe>(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) {
        let s = self.wave_base + self.lane;
        for v in 0..self.n {
            if v != s {
                self.scores[v] += self.delta[v].load();
            }
        }
        let delta = &self.delta;
        engine.map_vertices(g, probes, |v, _| delta[v as usize].store(0.0));
    }

    /// Enter the next lane's backward walk (skipping lanes whose source
    /// reached nothing), or reseed the next wave, or finish.
    fn backward_or_advance<P: ShardProbe>(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        while self.lane < self.wave_len {
            let depth = self.wave_levels[self.lane].len();
            if depth > 1 {
                self.mode = BcMode::Backward;
                self.cur = (depth - 2) as u32;
                // Each level list is consumed exactly once per wave (and
                // cleared at the next wave), so hand it to the frontier
                // instead of copying it.
                let lvl = std::mem::take(&mut self.wave_levels[self.lane][depth - 1]);
                return Some(Frontier::from_vertices(g, lvl));
            }
            // Isolated source: nothing to accumulate (δ untouched).
            self.lane += 1;
        }
        self.advance_wave(g, engine, probes)
    }

    /// Reset the wave-scoped state and seed the next wave of sources, or
    /// return `None` when all sources are done.
    fn advance_wave<P: ShardProbe>(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        self.wave_base += self.wave_len;
        if self.wave_base >= self.limit {
            return None;
        }
        let prev = self.wave_len;
        self.wave_len = (self.limit - self.wave_base).min(MAX_LANES);
        self.full = full_mask(self.wave_len);
        let n = self.n;
        let (visit, visit_next, cur_mask) = (&self.visit, &self.visit_next, &self.cur_mask);
        let (sigma, level) = (&self.sigma, &self.level);
        engine.map_vertices(g, probes, |v, _| {
            let vi = v as usize;
            // ORDERING: Relaxed — exclusive reseed between waves; the
            // runner's phase barrier orders it against the kernels.
            visit[vi].store(0, Ordering::Relaxed);
            visit_next[vi].store(0, Ordering::Relaxed);
            cur_mask[vi].store(0, Ordering::Relaxed);
            for l in 0..prev {
                sigma[l * n + vi].store(0, Ordering::Relaxed);
                level[l * n + vi].store(UNVISITED, Ordering::Relaxed);
            }
        });
        for per_lane in &mut self.wave_levels {
            per_lane.clear();
        }
        Some(self.seed_wave(g))
    }
}

/// Mask with the `lanes` low bits set.
#[inline]
fn full_mask(lanes: usize) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

impl<P: Probe> EdgeKernel<P> for BcProgram {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        match self.mode {
            BcMode::Forward => {
                probe.branch_cond();
                probe.read(addr_of_index(&self.cur_mask, u as usize), 8);
                probe.read(addr_of_index(&self.visit, v as usize), 8);
                // ORDERING: Relaxed — cur_mask and visit are written only
                // by the pre-round fold, so both loads are round-immutable
                // snapshots: every frontier parent of v computes the same
                // per-lane arrival condition.
                let avail = self.cur_mask[u as usize].load(Ordering::Relaxed)
                    & !self.visit[v as usize].load(Ordering::Relaxed);
                if avail == 0 {
                    return false;
                }
                let mut m = avail;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    // W(i): multiplicity scatter, one integer FAA per
                    // arriving lane (§4.5).
                    probe.atomic_rmw(addr_of_index(&self.sigma, l * self.n + v as usize), 8);
                    // ORDERING: Relaxed — σ_l(u) settled at a previous
                    // level; the adds commute across racing parents.
                    let su = self.sigma[l * self.n + u as usize].load(Ordering::Relaxed);
                    self.sigma[l * self.n + v as usize].fetch_add(su, Ordering::Relaxed);
                }
                // W(i): discovery race — one mask fetch_or claims every
                // arriving lane at once (the §4.5 CAS, batched).
                probe.atomic_rmw(addr_of_index(&self.visit_next, v as usize), 8);
                // ORDERING: Relaxed — the OR is commutative; the fold
                // behind the round barrier sees the union.
                let prev = self.visit_next[v as usize].fetch_or(avail, Ordering::Relaxed);
                prev == 0
            }
            BcMode::Backward => {
                probe.branch_cond();
                probe.read(
                    addr_of_index(&self.level, self.lane * self.n + v as usize),
                    4,
                );
                if self.lv(v) == self.cur {
                    // W(f): float write conflict — the CAS-loop emulation,
                    // one atomic per attempt (§4.9).
                    let attempts = self.delta[v as usize].fetch_add(self.partial(v, u));
                    for _ in 0..attempts {
                        probe.atomic_rmw(addr_of_index(&self.delta, v as usize), 8);
                    }
                }
                false
            }
        }
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        match self.mode {
            BcMode::Forward => {
                // Own-cell per-lane σ accumulate (§3.8): v gathers from
                // every frontier parent, one thread owns it.
                probe.read(addr_of_index(&self.cur_mask, u as usize), 8);
                probe.read(addr_of_index(&self.visit, v as usize), 8);
                // ORDERING: Relaxed — round-immutable fold-written words.
                let avail = self.cur_mask[u as usize].load(Ordering::Relaxed)
                    & !self.visit[v as usize].load(Ordering::Relaxed);
                if avail == 0 {
                    return false;
                }
                let mut m = avail;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    probe.read(addr_of_index(&self.sigma, l * self.n + u as usize), 8);
                    probe.write(addr_of_index(&self.sigma, l * self.n + v as usize), 8);
                    // ORDERING: Relaxed — σ_l(v) is an owned cell: only
                    // v's thread touches it this round, in neighbor order
                    // (what makes pull σ deterministic).
                    let su = self.sigma[l * self.n + u as usize].load(Ordering::Relaxed);
                    let sv = self.sigma[l * self.n + v as usize].load(Ordering::Relaxed);
                    self.sigma[l * self.n + v as usize].store(sv + su, Ordering::Relaxed);
                }
                probe.write(addr_of_index(&self.visit_next, v as usize), 8);
                // ORDERING: Relaxed — own-cell discovery bits, plain
                // load/OR/store; the fold drains them behind the barrier.
                let have = self.visit_next[v as usize].load(Ordering::Relaxed);
                self.visit_next[v as usize].store(have | avail, Ordering::Relaxed);
                avail & !have != 0
            }
            BcMode::Backward => {
                // Pure reads of finished successor cells, own-cell δ write.
                probe.read(addr_of_index(&self.delta, u as usize), 8);
                probe.read(
                    addr_of_index(&self.sigma, self.lane * self.n + u as usize),
                    8,
                );
                let add = self.partial(v, u);
                probe.write(addr_of_index(&self.delta, v as usize), 8);
                self.delta[v as usize].store(self.delta[v as usize].load() + add);
                false
            }
        }
    }

    fn pull_candidate(&self, v: VertexId, probe: &P) -> bool {
        probe.branch_cond();
        match self.mode {
            // ORDERING: Relaxed — visit is round-immutable (fold-written);
            // a vertex every wave lane has settled has nothing to gather.
            BcMode::Forward => self.visit[v as usize].load(Ordering::Relaxed) != self.full,
            BcMode::Backward => self.lv(v) == self.cur,
        }
    }

    // No `apply_owned` override: both sweeps' pull gates read only
    // round-immutable state (`cur_mask`/`visit` masks forward, `level`
    // backward), so the default owner-computes delegate to the
    // already-atomic-free pull side is exact — see the module docs.
}

impl<P: ShardProbe> Program<P> for BcProgram {
    type Output = Vec<f64>;

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        if self.limit == 0 || g.num_vertices() == 0 {
            return Frontier::empty(g.num_vertices());
        }
        self.wave_len = self.limit.min(MAX_LANES);
        self.full = full_mask(self.wave_len);
        self.seed_wave(g)
    }

    fn begin_round(
        &mut self,
        _ctx: RoundCtx,
        _g: &CsrGraph,
        frontier: &mut Frontier,
        _engine: &Engine,
        _probes: &ProbeShards<P>,
    ) {
        if self.mode == BcMode::Backward {
            self.round_lanes = 1;
            return;
        }
        // Fold arrivals into the settled set, freeze the round's frontier
        // masks, stamp per-lane levels and record each lane's level
        // frontier for the backward walk. Runs on settled post-barrier
        // state (`&mut self`, plain `get_mut` access). The round about to
        // run consumes exactly level `cur`'s frontiers.
        let r = self.cur as usize;
        let n = self.n;
        let mut union = 0u64;
        for &v in frontier.vertices() {
            let vi = v as usize;
            let d = *self.visit_next[vi].get_mut() & !*self.visit[vi].get_mut();
            *self.visit_next[vi].get_mut() = 0;
            *self.visit[vi].get_mut() |= d;
            *self.cur_mask[vi].get_mut() = d;
            union |= d;
            let mut m = d;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                *self.level[l * n + vi].get_mut() = r as u32;
                // A lane's levels are contiguous (an arrival at r needs a
                // parent at r-1), so at most one new list opens per lane.
                if self.wave_levels[l].len() == r {
                    self.wave_levels[l].push(Vec::new());
                }
                self.wave_levels[l][r].push(v);
            }
        }
        self.round_lanes = union.count_ones();
        self.cur += 1;
    }

    fn lanes_active(&self) -> Option<u32> {
        Some(self.round_lanes)
    }

    fn next_phase(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        match self.mode {
            BcMode::Forward => {
                // Wave forward drained: every lane's level frontiers are
                // recorded; walk the lanes' dependency DAGs in turn.
                self.lane = 0;
                self.backward_or_advance(g, engine, probes)
            }
            BcMode::Backward => {
                if self.cur > 0 {
                    self.cur -= 1;
                    let lvl =
                        std::mem::take(&mut self.wave_levels[self.lane][self.cur as usize + 1]);
                    Some(Frontier::from_vertices(g, lvl))
                } else {
                    self.fold_lane_scores(g, engine, probes);
                    self.lane += 1;
                    self.backward_or_advance(g, engine, probes)
                }
            }
        }
    }

    fn finish(mut self, g: &CsrGraph) -> Vec<f64> {
        // Undirected graphs see each (s, t) pair from both endpoints.
        if !g.is_directed() {
            for x in &mut self.scores {
                *x /= 2.0;
            }
        }
        self.scores
    }
}

/// Betweenness centrality under the given direction policy.
pub fn betweenness<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    policy: DirectionPolicy,
    opts: &BcOptions,
    probes: &ProbeShards<P>,
) -> ParBcResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, BcProgram::new(g, opts));
    ParBcResult {
        scores: run.output,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::ExecutionMode;
    use pp_core::bc::betweenness_seq;
    use pp_core::Direction;
    use pp_graph::gen;
    use pp_telemetry::{CountingProbe, NullProbe};

    fn assert_close(a: &[f64], b: &[f64], tol: f64, ctx: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + y.abs()),
                "{ctx}: vertex {i}: {x} vs {y}"
            );
        }
    }

    fn policies() -> impl Iterator<Item = DirectionPolicy> {
        DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
    }

    #[test]
    fn matches_brandes_on_random_graphs() {
        for seed in [1, 2] {
            let g = gen::rmat(6, 4, seed);
            let reference = betweenness_seq(&g, None);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for policy in policies() {
                    let r = betweenness(&engine, &g, policy, &BcOptions::default(), &probes);
                    assert_close(
                        &r.scores,
                        &reference,
                        1e-6,
                        &format!("seed {seed} x{threads} {policy:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_families() {
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        // Path 0-1-2-3-4: bc = [0, 3, 4, 3, 0].
        let path = gen::path(5);
        for policy in policies() {
            let r = betweenness(&engine, &path, policy, &BcOptions::default(), &probes);
            assert_close(&r.scores, &[0.0, 3.0, 4.0, 3.0, 0.0], 1e-9, "path");
        }
        // Star K_{1,5}: the center lies on every leaf pair: C(5,2) = 10.
        let star = gen::star(6);
        let r = betweenness(
            &engine,
            &star,
            DirectionPolicy::adaptive(),
            &BcOptions::default(),
            &probes,
        );
        assert!((r.scores[0] - 10.0).abs() < 1e-9);
        for &leaf in &r.scores[1..] {
            assert!(leaf.abs() < 1e-12);
        }
    }

    #[test]
    fn diamond_splits_multiplicities() {
        // 0-1, 0-2, 1-3, 2-3: two shortest 0→3 paths split the dependency.
        let g = pp_graph::GraphBuilder::undirected(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build();
        let reference = betweenness_seq(&g, None);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = betweenness(&engine, &g, policy, &BcOptions::default(), &probes);
            assert_close(&r.scores, &reference, 1e-9, "diamond");
        }
        assert!((reference[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capped_sources_match_the_capped_oracle() {
        let g = gen::rmat(6, 5, 9);
        let opts = BcOptions {
            max_sources: Some(10),
        };
        let reference = betweenness_seq(&g, Some(10));
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = betweenness(&engine, &g, policy, &opts, &probes);
            assert_close(&r.scores, &reference, 1e-6, "sampled");
        }
    }

    #[test]
    fn source_count_above_lane_width_spans_waves() {
        // n = 128 > MAX_LANES forces two full waves (plus their backward
        // walks) through the wave-reset path.
        let g = gen::rmat(7, 3, 5);
        let reference = betweenness_seq(&g, None);
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = betweenness(&engine, &g, policy, &BcOptions::default(), &probes);
            assert_close(&r.scores, &reference, 1e-6, "two waves");
        }
        // An off-width cap exercises a short tail wave.
        let opts = BcOptions {
            max_sources: Some(MAX_LANES + 3),
        };
        let reference = betweenness_seq(&g, Some(MAX_LANES + 3));
        let r = betweenness(&engine, &g, DirectionPolicy::adaptive(), &opts, &probes);
        assert_close(&r.scores, &reference, 1e-6, "tail wave");
    }

    #[test]
    fn pull_is_deterministic_across_thread_counts() {
        let g = gen::rmat(6, 4, 7);
        let opts = BcOptions {
            max_sources: Some(12),
        };
        let run = |threads: usize| {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            betweenness(
                &engine,
                &g,
                DirectionPolicy::Fixed(Direction::Pull),
                &opts,
                &probes,
            )
            .scores
        };
        let one = run(1);
        assert_eq!(one, run(2), "pull BC is bitwise thread-invariant");
        assert_eq!(one, run(8));
    }

    #[test]
    fn phase_structure_per_source_is_forward_then_backward_levels() {
        // Path of 6: from each source the forward phase has `depth` rounds
        // and is followed by `depth - 1` single-round backward phases. A
        // wave of one source must reproduce the single-source structure.
        let g = gen::path(6);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = betweenness(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &BcOptions {
                max_sources: Some(1),
            },
            &probes,
        );
        // Source 0 on a 6-path: the forward phase consumes the six level
        // frontiers {0}..{5}; the backward walk then runs one single-round
        // phase per target level 4, 3, 2, 1, 0.
        assert_eq!(r.report.phases, 6, "1 forward + 5 backward phases");
        assert_eq!(r.report.phase_rounds(0).count(), 6, "forward rounds");
        for p in 1..r.report.phases {
            assert_eq!(r.report.phase_rounds(p).count(), 1, "backward level");
        }
    }

    #[test]
    fn forward_rounds_report_wave_lanes() {
        // Path of 6, all six sources in one wave: every lane is in flight
        // in the seeding round, and the forward rounds carry lane counts.
        let g = gen::path(6);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = betweenness(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &BcOptions::default(),
            &probes,
        );
        let forward: Vec<u32> = r.report.phase_rounds(0).map(|s| s.lanes_active).collect();
        assert_eq!(forward[0], 6, "all lanes seed in round 0");
        assert!(
            forward.iter().all(|&l| l >= 1),
            "forward rounds carry lane counts: {forward:?}"
        );
        // Backward phases accumulate one lane at a time.
        for p in 1..r.report.phases {
            assert!(r.report.phase_rounds(p).all(|s| s.lanes_active == 1));
        }
    }

    #[test]
    fn push_uses_atomics_pull_and_pa_do_not() {
        let g = gen::rmat(6, 4, 4);
        let engine = Engine::new(4);
        let opts = BcOptions {
            max_sources: Some(4),
        };

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        betweenness(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &opts,
            &probes,
        );
        let push = probes.merged();
        assert!(
            push.atomics > 0,
            "forward FAA/fetch_or + backward float CAS"
        );

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        betweenness(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Pull),
            &opts,
            &probes,
        );
        let pull = probes.merged();
        assert_eq!(pull.atomics, 0, "pull BC is synchronization-free");
        assert_eq!(pull.locks, 0);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let reference = betweenness_seq(&g, Some(4));
        let run = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .mode(ExecutionMode::PartitionAware)
            .run(&g, BcProgram::new(&g, &opts));
        assert_close(&run.output, &reference, 1e-6, "pa push");
        let pa = probes.merged();
        assert_eq!(pa.atomics, 0, "owner-computes BC push must not CAS");
        assert!(pa.remote_sends > 0);
    }

    #[test]
    fn empty_graph_and_zero_sources() {
        let engine = Engine::new(1);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let empty = pp_graph::GraphBuilder::undirected(0).build();
        let r = betweenness(
            &engine,
            &empty,
            DirectionPolicy::adaptive(),
            &BcOptions::default(),
            &probes,
        );
        assert!(r.scores.is_empty());
        assert_eq!(r.report.phases, 0);
        let g = gen::path(4);
        let r = betweenness(
            &engine,
            &g,
            DirectionPolicy::adaptive(),
            &BcOptions {
                max_sources: Some(0),
            },
            &probes,
        );
        assert_eq!(r.scores, vec![0.0; 4]);
        assert_eq!(r.report.phases, 0);
    }
}
