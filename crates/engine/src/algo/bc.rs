//! Brandes betweenness centrality as a [`Program`] (§3.5, Algorithm 5) —
//! a forward/backward kernel state machine over the per-phase lifecycle.
//!
//! Per source, the run alternates two kernel families, dispatched on the
//! program's internal forward/backward mode (advanced by
//! [`Program::next_phase`], so the `&self` kernels only ever see settled
//! state):
//!
//! * **Forward** — one phase whose rounds are the BFS levels, counting
//!   shortest-path multiplicities σ. Push claims the level with an integer
//!   CAS and scatters σ with FAAs (the §4.5 W(i) conflicts); pull gathers
//!   every frontier parent's σ into the owned cell. `begin_round` records
//!   each consumed frontier — the level structure the backward walk needs.
//! * **Backward** — one phase per level, deepest first, folding partial
//!   dependencies `δ[v] += σ[v]/σ[w] · (1 + δ[w])` down the shortest-path
//!   DAG. The push side scatters *floating-point* partials — the conflict
//!   class the paper highlights (§4.9), resolved here with the CAS-loop
//!   [`AtomicF64`] (each attempt counted as an atomic); the pull side
//!   reads finished successor cells and writes only its own δ.
//!
//! The forward σ-accumulation is the engine's one kernel whose default
//! [`EdgeKernel::apply_owned`] would be *wrong* under
//! [`crate::ExecutionMode::PartitionAware`]: the pull-candidate gate
//! ("still unvisited") would drop every parent's contribution after the
//! first delivered update. The override applies the level claim and the
//! σ add separately — plain writes, owner-exclusive, still atomic-free.
//!
//! Push float accumulation reorders, so scores match the sequential
//! Brandes oracle to ε rather than bitwise (pull is deterministic).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use pp_core::bc::BcOptions;
use pp_core::bfs::UNVISITED;
use pp_core::sync::AtomicF64;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{Program, RoundCtx};
use crate::report::RunReport;
use crate::runner::Runner;

/// Result of an engine betweenness computation.
#[derive(Clone, Debug)]
pub struct ParBcResult {
    /// Centrality scores (undirected convention: each unordered pair
    /// counted once).
    pub scores: Vec<f64>,
    /// Per-round statistics: per source, one forward phase (rounds =
    /// levels) followed by one backward phase per level, deepest first.
    pub report: RunReport,
}

/// Which sweep the kernels currently implement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BcMode {
    /// σ-counting BFS; `cur` is the level of the frontier being consumed.
    Forward,
    /// Dependency accumulation; `cur` is the *target* level receiving from
    /// the `cur + 1` frontier.
    Backward,
}

/// Brandes BC as a vertex program: a forward/backward kernel state machine.
pub struct BcProgram {
    /// Number of sources ([`BcOptions::max_sources`]-capped).
    limit: usize,
    /// Current source.
    s: usize,
    mode: BcMode,
    /// Forward: level of the consumed frontier; backward: target level.
    cur: u32,
    level: Vec<AtomicU32>,
    sigma: Vec<AtomicU64>,
    delta: Vec<AtomicF64>,
    /// Accumulated scores across finished sources.
    scores: Vec<f64>,
    /// The current source's per-level frontiers, recorded as the forward
    /// rounds consume them.
    levels: Vec<Vec<VertexId>>,
}

impl BcProgram {
    /// A program accumulating dependencies from sources `0..limit`.
    pub fn new(g: &CsrGraph, opts: &BcOptions) -> Self {
        let n = g.num_vertices();
        Self {
            limit: opts.max_sources.unwrap_or(n).min(n),
            s: 0,
            mode: BcMode::Forward,
            cur: 0,
            level: (0..n).map(|_| AtomicU32::new(UNVISITED)).collect(),
            sigma: (0..n).map(|_| AtomicU64::new(0)).collect(),
            delta: (0..n).map(|_| AtomicF64::new(0.0)).collect(),
            scores: vec![0.0; n],
            levels: Vec::new(),
        }
    }

    #[inline]
    fn lv(&self, v: VertexId) -> u32 {
        self.level[v as usize].load(Ordering::Relaxed)
    }

    /// The backward contribution of successor `u` to predecessor `v`.
    #[inline]
    fn partial(&self, v: VertexId, u: VertexId) -> f64 {
        let su = self.sigma[u as usize].load(Ordering::Relaxed) as f64;
        self.sigma[v as usize].load(Ordering::Relaxed) as f64
            * ((1.0 + self.delta[u as usize].load()) / su)
    }

    /// Fold the finished source's dependencies into the scores and seed the
    /// next source, or return `None` when all sources are done.
    fn advance_source<P: ShardProbe>(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        for v in 0..g.num_vertices() {
            if v != self.s {
                self.scores[v] += self.delta[v].load();
            }
        }
        self.s += 1;
        if self.s >= self.limit {
            return None;
        }
        let (level, sigma, delta) = (&self.level, &self.sigma, &self.delta);
        engine.map_vertices(g, probes, |v, _| {
            level[v as usize].store(UNVISITED, Ordering::Relaxed);
            sigma[v as usize].store(0, Ordering::Relaxed);
            delta[v as usize].store(0.0);
        });
        self.mode = BcMode::Forward;
        self.levels.clear();
        let s = self.s as VertexId;
        self.level[self.s].store(0, Ordering::Relaxed);
        self.sigma[self.s].store(1, Ordering::Relaxed);
        Some(Frontier::single(g, s))
    }
}

impl<P: Probe> EdgeKernel<P> for BcProgram {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        match self.mode {
            BcMode::Forward => {
                probe.branch_cond();
                probe.read(addr_of_index(&self.level, v as usize), 4);
                let mut claimed = false;
                if self.lv(v) == UNVISITED {
                    // W(i): discovery race, integer CAS (§4.5).
                    // ORDERING: AcqRel — the winning CAS is the claim
                    // point: Release keeps the claimant's preceding
                    // sigma/level reads ordered before the claim, Acquire
                    // pairs with racing claimants so the loser's path
                    // accumulation sees the established level.
                    probe.atomic_rmw(addr_of_index(&self.level, v as usize), 4);
                    claimed = self.level[v as usize]
                        .compare_exchange(
                            UNVISITED,
                            self.cur + 1,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        )
                        .is_ok();
                }
                if self.lv(v) == self.cur + 1 {
                    // W(i): multiplicity scatter, integer FAA.
                    probe.atomic_rmw(addr_of_index(&self.sigma, v as usize), 8);
                    self.sigma[v as usize].fetch_add(
                        self.sigma[u as usize].load(Ordering::Relaxed),
                        Ordering::Relaxed,
                    );
                }
                claimed
            }
            BcMode::Backward => {
                probe.branch_cond();
                probe.read(addr_of_index(&self.level, v as usize), 4);
                if self.lv(v) == self.cur {
                    // W(f): float write conflict — the CAS-loop emulation,
                    // one atomic per attempt (§4.9).
                    let attempts = self.delta[v as usize].fetch_add(self.partial(v, u));
                    for _ in 0..attempts {
                        probe.atomic_rmw(addr_of_index(&self.delta, v as usize), 8);
                    }
                }
                false
            }
        }
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        match self.mode {
            BcMode::Forward => {
                // Own-cell level stamp + σ accumulate (§3.8): v gathers
                // from every frontier parent, one thread owns it.
                probe.read(addr_of_index(&self.sigma, u as usize), 8);
                if self.lv(v) == UNVISITED {
                    probe.write(addr_of_index(&self.level, v as usize), 4);
                    self.level[v as usize].store(self.cur + 1, Ordering::Relaxed);
                }
                let su = self.sigma[u as usize].load(Ordering::Relaxed);
                probe.write(addr_of_index(&self.sigma, v as usize), 8);
                self.sigma[v as usize].store(
                    self.sigma[v as usize].load(Ordering::Relaxed) + su,
                    Ordering::Relaxed,
                );
                true
            }
            BcMode::Backward => {
                // Pure reads of finished successor cells, own-cell δ write.
                probe.read(addr_of_index(&self.delta, u as usize), 8);
                probe.read(addr_of_index(&self.sigma, u as usize), 8);
                let add = self.partial(v, u);
                probe.write(addr_of_index(&self.delta, v as usize), 8);
                self.delta[v as usize].store(self.delta[v as usize].load() + add);
                false
            }
        }
    }

    fn pull_candidate(&self, v: VertexId, probe: &P) -> bool {
        probe.branch_cond();
        match self.mode {
            BcMode::Forward => self.lv(v) == UNVISITED,
            BcMode::Backward => self.lv(v) == self.cur,
        }
    }

    /// Owner-computes apply. The forward default (candidate-gated pull)
    /// would drop every σ contribution after the first delivered parent —
    /// the exact hazard the `apply_owned` contract documents — so both
    /// sweeps are spelled out with plain owner-exclusive writes.
    fn apply_owned(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        match self.mode {
            BcMode::Forward => {
                probe.branch_cond();
                if self.lv(v) == UNVISITED {
                    probe.write(addr_of_index(&self.level, v as usize), 4);
                    self.level[v as usize].store(self.cur + 1, Ordering::Relaxed);
                }
                if self.lv(v) == self.cur + 1 {
                    let su = self.sigma[u as usize].load(Ordering::Relaxed);
                    probe.write(addr_of_index(&self.sigma, v as usize), 8);
                    self.sigma[v as usize].store(
                        self.sigma[v as usize].load(Ordering::Relaxed) + su,
                        Ordering::Relaxed,
                    );
                    true
                } else {
                    false
                }
            }
            BcMode::Backward => {
                probe.branch_cond();
                if self.lv(v) == self.cur {
                    let add = self.partial(v, u);
                    probe.write(addr_of_index(&self.delta, v as usize), 8);
                    self.delta[v as usize].store(self.delta[v as usize].load() + add);
                }
                false
            }
        }
    }
}

impl<P: ShardProbe> Program<P> for BcProgram {
    type Output = Vec<f64>;

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        if self.limit == 0 || g.num_vertices() == 0 {
            return Frontier::empty(g.num_vertices());
        }
        self.level[0].store(0, Ordering::Relaxed);
        self.sigma[0].store(1, Ordering::Relaxed);
        Frontier::single(g, 0)
    }

    fn begin_round(
        &mut self,
        _ctx: RoundCtx,
        _g: &CsrGraph,
        frontier: &mut Frontier,
        _engine: &Engine,
        _probes: &ProbeShards<P>,
    ) {
        if self.mode == BcMode::Forward {
            // Record the level structure for the backward walk; the round
            // about to run consumes exactly level `cur`'s frontier.
            self.levels.push(frontier.vertices().to_vec());
            self.cur = (self.levels.len() - 1) as u32;
        }
    }

    fn next_phase(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        match self.mode {
            BcMode::Forward => {
                // Forward drained: levels[0..=depth] are the BFS frontiers.
                if self.levels.len() <= 1 {
                    // Isolated source: nothing to accumulate.
                    return self.advance_source(g, engine, probes);
                }
                self.mode = BcMode::Backward;
                self.cur = (self.levels.len() - 2) as u32;
                // Each level list is consumed exactly once per source (and
                // the whole vec is cleared at the next source), so hand it
                // to the frontier instead of copying it.
                let lvl = std::mem::take(&mut self.levels[self.cur as usize + 1]);
                Some(Frontier::from_vertices(g, lvl))
            }
            BcMode::Backward => {
                if self.cur > 0 {
                    self.cur -= 1;
                    let lvl = std::mem::take(&mut self.levels[self.cur as usize + 1]);
                    Some(Frontier::from_vertices(g, lvl))
                } else {
                    self.advance_source(g, engine, probes)
                }
            }
        }
    }

    fn finish(mut self, g: &CsrGraph) -> Vec<f64> {
        // Undirected graphs see each (s, t) pair from both endpoints.
        if !g.is_directed() {
            for x in &mut self.scores {
                *x /= 2.0;
            }
        }
        self.scores
    }
}

/// Betweenness centrality under the given direction policy.
pub fn betweenness<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    policy: DirectionPolicy,
    opts: &BcOptions,
    probes: &ProbeShards<P>,
) -> ParBcResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, BcProgram::new(g, opts));
    ParBcResult {
        scores: run.output,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::ExecutionMode;
    use pp_core::bc::betweenness_seq;
    use pp_core::Direction;
    use pp_graph::gen;
    use pp_telemetry::{CountingProbe, NullProbe};

    fn assert_close(a: &[f64], b: &[f64], tol: f64, ctx: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() < tol * (1.0 + y.abs()),
                "{ctx}: vertex {i}: {x} vs {y}"
            );
        }
    }

    fn policies() -> impl Iterator<Item = DirectionPolicy> {
        DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
    }

    #[test]
    fn matches_brandes_on_random_graphs() {
        for seed in [1, 2] {
            let g = gen::rmat(6, 4, seed);
            let reference = betweenness_seq(&g, None);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for policy in policies() {
                    let r = betweenness(&engine, &g, policy, &BcOptions::default(), &probes);
                    assert_close(
                        &r.scores,
                        &reference,
                        1e-6,
                        &format!("seed {seed} x{threads} {policy:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_families() {
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        // Path 0-1-2-3-4: bc = [0, 3, 4, 3, 0].
        let path = gen::path(5);
        for policy in policies() {
            let r = betweenness(&engine, &path, policy, &BcOptions::default(), &probes);
            assert_close(&r.scores, &[0.0, 3.0, 4.0, 3.0, 0.0], 1e-9, "path");
        }
        // Star K_{1,5}: the center lies on every leaf pair: C(5,2) = 10.
        let star = gen::star(6);
        let r = betweenness(
            &engine,
            &star,
            DirectionPolicy::adaptive(),
            &BcOptions::default(),
            &probes,
        );
        assert!((r.scores[0] - 10.0).abs() < 1e-9);
        for &leaf in &r.scores[1..] {
            assert!(leaf.abs() < 1e-12);
        }
    }

    #[test]
    fn diamond_splits_multiplicities() {
        // 0-1, 0-2, 1-3, 2-3: two shortest 0→3 paths split the dependency.
        let g = pp_graph::GraphBuilder::undirected(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build();
        let reference = betweenness_seq(&g, None);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = betweenness(&engine, &g, policy, &BcOptions::default(), &probes);
            assert_close(&r.scores, &reference, 1e-9, "diamond");
        }
        assert!((reference[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capped_sources_match_the_capped_oracle() {
        let g = gen::rmat(6, 5, 9);
        let opts = BcOptions {
            max_sources: Some(10),
        };
        let reference = betweenness_seq(&g, Some(10));
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = betweenness(&engine, &g, policy, &opts, &probes);
            assert_close(&r.scores, &reference, 1e-6, "sampled");
        }
    }

    #[test]
    fn pull_is_deterministic_across_thread_counts() {
        let g = gen::rmat(6, 4, 7);
        let opts = BcOptions {
            max_sources: Some(12),
        };
        let run = |threads: usize| {
            let engine = Engine::new(threads);
            let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
            betweenness(
                &engine,
                &g,
                DirectionPolicy::Fixed(Direction::Pull),
                &opts,
                &probes,
            )
            .scores
        };
        let one = run(1);
        assert_eq!(one, run(2), "pull BC is bitwise thread-invariant");
        assert_eq!(one, run(8));
    }

    #[test]
    fn phase_structure_per_source_is_forward_then_backward_levels() {
        // Path of 6: from each source the forward phase has `depth` rounds
        // and is followed by `depth - 1` single-round backward phases.
        let g = gen::path(6);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = betweenness(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &BcOptions {
                max_sources: Some(1),
            },
            &probes,
        );
        // Source 0 on a 6-path: the forward phase consumes the six level
        // frontiers {0}..{5}; the backward walk then runs one single-round
        // phase per target level 4, 3, 2, 1, 0.
        assert_eq!(r.report.phases, 6, "1 forward + 5 backward phases");
        assert_eq!(r.report.phase_rounds(0).count(), 6, "forward rounds");
        for p in 1..r.report.phases {
            assert_eq!(r.report.phase_rounds(p).count(), 1, "backward level");
        }
    }

    #[test]
    fn push_uses_atomics_pull_and_pa_do_not() {
        let g = gen::rmat(6, 4, 4);
        let engine = Engine::new(4);
        let opts = BcOptions {
            max_sources: Some(4),
        };

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        betweenness(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &opts,
            &probes,
        );
        let push = probes.merged();
        assert!(push.atomics > 0, "forward CAS/FAA + backward float CAS");

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        betweenness(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Pull),
            &opts,
            &probes,
        );
        let pull = probes.merged();
        assert_eq!(pull.atomics, 0, "pull BC is synchronization-free");
        assert_eq!(pull.locks, 0);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let reference = betweenness_seq(&g, Some(4));
        let run = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .mode(ExecutionMode::PartitionAware)
            .run(&g, BcProgram::new(&g, &opts));
        assert_close(&run.output, &reference, 1e-6, "pa push");
        let pa = probes.merged();
        assert_eq!(pa.atomics, 0, "owner-computes BC push must not CAS");
        assert!(pa.remote_sends > 0);
    }

    #[test]
    fn empty_graph_and_zero_sources() {
        let engine = Engine::new(1);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let empty = pp_graph::GraphBuilder::undirected(0).build();
        let r = betweenness(
            &engine,
            &empty,
            DirectionPolicy::adaptive(),
            &BcOptions::default(),
            &probes,
        );
        assert!(r.scores.is_empty());
        assert_eq!(r.report.phases, 0);
        let g = gen::path(4);
        let r = betweenness(
            &engine,
            &g,
            DirectionPolicy::adaptive(),
            &BcOptions {
                max_sources: Some(0),
            },
            &probes,
        );
        assert_eq!(r.scores, vec![0.0; 4]);
        assert_eq!(r.report.phases, 0);
    }
}
