//! Connected components (label-min propagation) as a [`Program`] (§3.7).
//!
//! Every vertex carries a label (initially its id); labels propagate until
//! each component agrees on its minimum id. The frontier is the set of
//! vertices whose label changed in the previous round — seeded with every
//! vertex, so the first round covers every edge. The push update scatters
//! the smaller label with a CAS-min; the pull gather takes own-cell
//! minimums over frontier neighbors. Labels only decrease, so any
//! interleaving of directions converges to the same fixpoint — the
//! per-component minimum — which the `pp-core` twin
//! ([`pp_core::components::connected_components`]) oracles in tests.

use std::sync::atomic::{AtomicU32, Ordering};

use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::Program;
use crate::report::RunReport;
use crate::runner::Runner;

/// Result of an engine components run.
#[derive(Clone, Debug)]
pub struct ParCcResult {
    /// Per-vertex component label = minimum vertex id in the component.
    pub labels: Vec<VertexId>,
    /// Per-round direction/frontier/edge statistics.
    pub report: RunReport,
}

impl ParCcResult {
    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(v, &l)| v as VertexId == l)
            .count()
    }
}

/// Label-min connected components as a vertex program.
pub struct CcProgram {
    labels: Vec<AtomicU32>,
}

impl CcProgram {
    /// A program labeling each vertex with its component's minimum id.
    pub fn new(g: &CsrGraph) -> Self {
        Self {
            labels: (0..g.num_vertices() as u32).map(AtomicU32::new).collect(),
        }
    }
}

impl<P: Probe> EdgeKernel<P> for CcProgram {
    fn push_update(&self, u: VertexId, v: VertexId, _w: Weight, probe: &P) -> bool {
        let lu = self.labels[u as usize].load(Ordering::Relaxed);
        probe.read(addr_of_index(&self.labels, v as usize), 4);
        probe.branch_cond();
        // W(i): scatter the smaller label with CAS-min (§4.9 push side).
        // ORDERING: AcqRel on the CAS — a racing pusher that loses must
        // Acquire the smaller label it lost to, so its retry loop
        // converges on the min instead of reviving a stale label.
        let mut cur = self.labels[v as usize].load(Ordering::Relaxed);
        while lu < cur {
            probe.atomic_rmw(addr_of_index(&self.labels, v as usize), 4);
            match self.labels[v as usize].compare_exchange_weak(
                cur,
                lu,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
        false
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, _w: Weight, probe: &P) -> bool {
        // R: read conflict on the neighbor's label; own-cell write only.
        probe.read(addr_of_index(&self.labels, u as usize), 4);
        probe.branch_cond();
        let lu = self.labels[u as usize].load(Ordering::Relaxed);
        if lu < self.labels[v as usize].load(Ordering::Relaxed) {
            probe.write(addr_of_index(&self.labels, v as usize), 4);
            self.labels[v as usize].store(lu, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn may_activate_twice(&self) -> bool {
        // Every improving CAS-min reports the target active again.
        true
    }
}

impl<P: ShardProbe> Program<P> for CcProgram {
    type Output = Vec<VertexId>;

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        Frontier::full(g)
    }

    fn finish(self, g: &CsrGraph) -> Vec<VertexId> {
        // Pointer-style flattening: labels may still point at non-minimum
        // ids transitively on pathological schedules; chase to the fixpoint
        // (same safeguard as the pp-core twin).
        let mut flat: Vec<VertexId> = self.labels.into_iter().map(AtomicU32::into_inner).collect();
        for v in 0..g.num_vertices() {
            let mut l = flat[v];
            while flat[l as usize] != l {
                l = flat[l as usize];
            }
            flat[v] = l;
        }
        flat
    }
}

/// Connected components under the given direction policy.
pub fn connected_components<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    policy: DirectionPolicy,
    probes: &ProbeShards<P>,
) -> ParCcResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, CcProgram::new(g));
    ParCcResult {
        labels: run.output,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::components::connected_components as cc_oracle;
    use pp_core::Direction;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::{CountingProbe, NullProbe};

    /// Single source of truth for the schedule axis: the same sweep the
    /// benches and equivalence tests iterate.
    fn policies() -> impl Iterator<Item = DirectionPolicy> {
        DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
    }

    #[test]
    fn labels_match_the_core_oracle_on_standard_families() {
        for (name, g) in [
            ("path", gen::path(40)),
            ("rmat", gen::rmat(8, 4, 5)),
            ("sparse-er", gen::erdos_renyi(200, 150, 3)),
            ("isolated", GraphBuilder::undirected(7).edge(0, 1).build()),
        ] {
            let expected = cc_oracle(&g, Direction::Pull).labels;
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for policy in policies() {
                    let r = connected_components(&engine, &g, policy, &probes);
                    assert_eq!(r.labels, expected, "{name} x{threads} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn label_is_component_minimum() {
        let g = gen::cycle(12);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = connected_components(&engine, &g, DirectionPolicy::adaptive(), &probes);
        assert!(r.labels.iter().all(|&l| l == 0));
        assert_eq!(r.num_components(), 1);
    }

    #[test]
    fn push_atomics_pull_none() {
        let g = gen::rmat(7, 4, 2);
        let engine = Engine::new(2);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        connected_components(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        assert!(probes.merged().atomics > 0);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        connected_components(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Pull),
            &probes,
        );
        assert_eq!(probes.merged().atomics, 0);
        assert!(probes.merged().reads > 0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build();
        let engine = Engine::new(1);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = connected_components(&engine, &g, DirectionPolicy::adaptive(), &probes);
        assert_eq!(r.num_components(), 0);
        assert_eq!(r.report.num_rounds(), 0);
    }
}
