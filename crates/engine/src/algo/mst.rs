//! Boruvka minimum spanning tree as a [`Program`] (§3.7, Algorithm 7,
//! Figure 4) — the multi-kernel showcase of the per-phase lifecycle.
//!
//! Each Boruvka iteration contributes the paper's three timed phases to
//! the run, in order, so `RunReport::phase_rounds(p)` exposes them
//! directly (`p % 3` maps to [`MstPhaseKind`]):
//!
//! * **FM (Find Minimum)** — an edge phase. Every vertex elects its
//!   minimum incident *cut* edge into a per-vertex slot: the push kernel
//!   CAS-mins the remote slot `best[v]` (Algorithm 7 lines 10-14, the
//!   W(i) conflict), the pull kernel mins the own slot with a plain write
//!   (lines 15-17). Packing `(w, u)` into the slot orders candidates at
//!   `v` exactly by the canonical per-edge key `(w, min(u,v), max(u,v))`
//!   — globally distinct keys, the classic fix that keeps the merge graph
//!   free of cycles longer than mutual pairs.
//! * **BMT (Build Merge Tree)** — a [`PhaseKernel::VertexStep`]. The
//!   per-vertex slots are reduced to per-supervertex champions, 2-cycles
//!   are broken (lower label roots), pointer jumping flattens the merge
//!   forest, and every non-root's elected edge joins the forest — all in
//!   [`Program::begin_round`], no edge traversal.
//! * **M (Merge)** — a vertex step relabeling every vertex to its root
//!   supervertex and resetting its slot for the next FM sweep (a
//!   frontier-wide [`Engine::vertex_map`], own-cell writes only).
//!
//! The run converges when a BMT finds no mergeable edge. The sequential
//! Kruskal union-find ([`pp_core::mst::kruskal_seq`]) is the oracle for
//! forest weight and edge count.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use pp_core::sync::atomic_min_u64;
use pp_graph::{CsrGraph, VertexId, Weight};
use pp_telemetry::{addr_of_index, Probe};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{frontier_where, PhaseKernel, Program, RoundCtx};
use crate::report::RunReport;
use crate::runner::Runner;

/// An empty minimum-edge slot.
const EMPTY: u64 = u64::MAX;

/// The paper's phase taxonomy for one Boruvka iteration (Figure 4's three
/// subplots). Runner phase `p` belongs to iteration `p / 3` and kind
/// `MstPhaseKind::of(p)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MstPhaseKind {
    /// Find Minimum: the edge sweep electing each supervertex's cheapest
    /// outgoing edge.
    FindMin,
    /// Build Merge Tree: champion reduction, cycle breaking, pointer
    /// jumping (a vertex step over the active supervertices).
    BuildMergeTree,
    /// Merge: relabel every vertex to its root supervertex (a vertex step
    /// over all vertices).
    Merge,
}

impl MstPhaseKind {
    /// The kind of runner phase `p`.
    pub fn of(phase: u32) -> Self {
        match phase % 3 {
            0 => MstPhaseKind::FindMin,
            1 => MstPhaseKind::BuildMergeTree,
            _ => MstPhaseKind::Merge,
        }
    }
}

/// Result of an engine Boruvka run.
#[derive(Clone, Debug)]
pub struct ParMstResult {
    /// The spanning forest's edges, canonical `(min, max, w)`, sorted.
    pub edges: Vec<(VertexId, VertexId, Weight)>,
    /// Sum of the selected edge weights.
    pub total_weight: u64,
    /// Per-round statistics; phases cycle FM → BMT → M (see
    /// [`MstPhaseKind::of`]), so `report.phase_rounds(3k)` is iteration
    /// `k`'s find-minimum sweep, `3k + 1` its merge-tree build, `3k + 2`
    /// its relabeling.
    pub report: RunReport,
}

impl ParMstResult {
    /// Number of Boruvka iterations the run took (the final iteration has
    /// FM + BMT but no M phase — nothing merged).
    pub fn iterations(&self) -> u32 {
        self.report.phases.div_ceil(3)
    }
}

/// Boruvka as a vertex program: per-vertex minimum-edge election (FM edge
/// kernels) plus vertex-step BMT/M phases.
pub struct MstProgram {
    /// Supervertex label per vertex.
    sv: Vec<AtomicU32>,
    /// Per-vertex minimum cut-edge slot, packed `(w, other endpoint)`.
    best: Vec<AtomicU64>,
    /// Merge pointer per supervertex (BMT output, M input).
    parent: Vec<u32>,
    /// Forest edges chosen so far, canonical `(min, max, w)`.
    chosen: Vec<(VertexId, VertexId, Weight)>,
    /// Which of the three phase kinds the current runner phase is.
    state: MstPhaseKind,
    /// Whether the last BMT found anything to merge.
    any_merge: bool,
    /// BMT scratch, reused across iterations: champion per supervertex.
    champ: Vec<Option<Champion>>,
    /// Reseed scratch, reused across iterations: label-in-use flags.
    active: Vec<bool>,
}

#[inline]
fn pack(w: Weight, other: VertexId) -> u64 {
    ((w as u64) << 32) | other as u64
}

#[inline]
fn unpack(packed: u64) -> (Weight, VertexId) {
    ((packed >> 32) as Weight, packed as VertexId)
}

/// The canonical, globally distinct key of edge `(v, u, w)`.
#[inline]
fn canonical(w: Weight, v: VertexId, u: VertexId) -> (Weight, VertexId, VertexId) {
    (w, v.min(u), v.max(u))
}

/// A supervertex's elected edge: its canonical key plus the endpoint on the
/// far side (whose label is the merge target).
type Champion = ((Weight, VertexId, VertexId), VertexId);

impl MstProgram {
    /// A program computing the minimum spanning forest of `g`.
    pub fn new(g: &CsrGraph) -> Self {
        assert!(g.is_weighted(), "Boruvka requires edge weights");
        let n = g.num_vertices();
        Self {
            sv: (0..n as u32).map(AtomicU32::new).collect(),
            best: (0..n).map(|_| AtomicU64::new(EMPTY)).collect(),
            parent: (0..n as u32).collect(),
            chosen: Vec::new(),
            state: MstPhaseKind::FindMin,
            any_merge: false,
            champ: vec![None; n],
            active: vec![false; n],
        }
    }

    #[inline]
    fn label(&self, v: VertexId) -> u32 {
        self.sv[v as usize].load(Ordering::Relaxed)
    }

    /// The BMT vertex step: reduce per-vertex slots to per-supervertex
    /// champions, build and flatten the merge forest, record the elected
    /// edges. Sequential, like the `pp-core` twin's merge-tree phase.
    fn build_merge_tree(&mut self, g: &CsrGraph) {
        let n = g.num_vertices();
        // Champion per supervertex: (canonical key, other endpoint). The
        // buffer lives on the program, cleared here, so iterations don't
        // re-allocate O(n) scratch.
        let (champ, sv, best) = (&mut self.champ, &self.sv, &self.best);
        champ.fill(None);
        for v in 0..n as VertexId {
            let slot = best[v as usize].load(Ordering::Relaxed);
            if slot == EMPTY {
                continue;
            }
            let (w, u) = unpack(slot);
            let key = canonical(w, v, u);
            let f = sv[v as usize].load(Ordering::Relaxed) as usize;
            if champ[f].is_none_or(|(best, _)| key < best) {
                champ[f] = Some((key, u));
            }
        }
        // Merge pointers: champion edges define parent[f] = sv(other side).
        let parent = &mut self.parent;
        for (f, p) in parent.iter_mut().enumerate() {
            *p = f as u32;
        }
        let mut any_merge = false;
        for (f, c) in champ.iter().enumerate() {
            if let Some((_, u)) = c {
                parent[f] = sv[*u as usize].load(Ordering::Relaxed);
                any_merge = true;
            }
        }
        self.any_merge = any_merge;
        if !self.any_merge {
            return;
        }
        // Break mutual pairs: the lower label roots the merged tree.
        for f in 0..n as u32 {
            let p = self.parent[f as usize];
            if self.parent[p as usize] == f && f < p {
                self.parent[f as usize] = f;
            }
        }
        // Pointer jumping to the root (O(log n) sweeps; canonical keys
        // guarantee no cycle longer than a mutual pair survives).
        loop {
            let mut changed = false;
            for f in 0..n {
                let p = self.parent[f] as usize;
                let gp = self.parent[p];
                if self.parent[f] != gp {
                    self.parent[f] = gp;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Every non-root supervertex contributes its elected edge.
        for (f, c) in champ.iter().enumerate() {
            if self.parent[f] != f as u32 {
                let ((w, lo, hi), _) = c.expect("non-root must have an edge");
                self.chosen.push((lo, hi, w));
            }
        }
    }
}

impl<P: Probe> EdgeKernel<P> for MstProgram {
    fn push_update(&self, u: VertexId, v: VertexId, w: Weight, probe: &P) -> bool {
        probe.branch_cond();
        if self.label(u) == self.label(v) {
            return false;
        }
        // W(i): write conflict on the shared slot, CAS-min (§4.7).
        let (_, attempts) = atomic_min_u64(&self.best[v as usize], pack(w, u));
        for _ in 0..attempts {
            probe.atomic_rmw(addr_of_index(&self.best, v as usize), 8);
        }
        false
    }

    fn pull_gather(&self, v: VertexId, u: VertexId, w: Weight, probe: &P) -> bool {
        // R: read conflict on the neighbor's label; the min lands in the
        // own slot with a plain write — no synchronization (§4.7).
        probe.read(addr_of_index(&self.sv, u as usize), 4);
        probe.branch_cond();
        if self.label(u) == self.label(v) {
            return false;
        }
        let packed = pack(w, u);
        if packed < self.best[v as usize].load(Ordering::Relaxed) {
            probe.write(addr_of_index(&self.best, v as usize), 8);
            self.best[v as usize].store(packed, Ordering::Relaxed);
        }
        false
    }
}

impl<P: ShardProbe> Program<P> for MstProgram {
    type Output = (Vec<(VertexId, VertexId, Weight)>, u64);

    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
        // Iteration 0's FM sweep: every vertex scans its incident edges.
        Frontier::full(g)
    }

    fn phase_kernel(&self, _phase: u32) -> PhaseKernel {
        match self.state {
            MstPhaseKind::FindMin => PhaseKernel::EdgeMap,
            _ => PhaseKernel::VertexStep,
        }
    }

    fn begin_round(
        &mut self,
        _ctx: RoundCtx,
        g: &CsrGraph,
        frontier: &mut Frontier,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) {
        match self.state {
            MstPhaseKind::FindMin => {}
            MstPhaseKind::BuildMergeTree => self.build_merge_tree(g),
            MstPhaseKind::Merge => {
                // Relabel to the root supervertex and reset the slot for
                // the next FM sweep — own-cell writes only.
                let (sv, best, parent) = (&self.sv, &self.best, &self.parent);
                engine.vertex_map(g, frontier, probes, |v, probe| {
                    let s = sv[v as usize].load(Ordering::Relaxed);
                    probe.read(addr_of_index(parent, s as usize), 4);
                    probe.write(addr_of_index(sv, v as usize), 4);
                    sv[v as usize].store(parent[s as usize], Ordering::Relaxed);
                    best[v as usize].store(EMPTY, Ordering::Relaxed);
                });
            }
        }
    }

    fn next_phase(
        &mut self,
        g: &CsrGraph,
        _engine: &Engine,
        _probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        match self.state {
            MstPhaseKind::FindMin => {
                // FM drained: reduce over the active supervertices (the
                // flag buffer is program-owned, reused across iterations).
                self.state = MstPhaseKind::BuildMergeTree;
                let n = g.num_vertices();
                let (active, sv) = (&mut self.active, &self.sv);
                active.fill(false);
                for v in 0..n {
                    active[sv[v].load(Ordering::Relaxed) as usize] = true;
                }
                Some(frontier_where(g, |f| self.active[f as usize]))
            }
            MstPhaseKind::BuildMergeTree => {
                if !self.any_merge {
                    return None;
                }
                self.state = MstPhaseKind::Merge;
                Some(Frontier::full(g))
            }
            MstPhaseKind::Merge => {
                self.state = MstPhaseKind::FindMin;
                Some(Frontier::full(g))
            }
        }
    }

    fn finish(mut self, _g: &CsrGraph) -> Self::Output {
        // A mutual pair elects one edge from the non-root side only, but be
        // defensive about repeats, like the pp-core twin.
        self.chosen.sort_unstable();
        self.chosen.dedup();
        let total = self.chosen.iter().map(|&(_, _, w)| w as u64).sum();
        (self.chosen, total)
    }
}

/// Boruvka MST/MSF under the given direction policy.
pub fn boruvka<P: ShardProbe>(
    engine: &Engine,
    g: &CsrGraph,
    policy: DirectionPolicy,
    probes: &ProbeShards<P>,
) -> ParMstResult {
    let run = Runner::new(engine, probes)
        .policy(policy)
        .run(g, MstProgram::new(g));
    let (edges, total_weight) = run.output;
    ParMstResult {
        edges,
        total_weight,
        report: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioned::ExecutionMode;
    use pp_core::mst::kruskal_seq;
    use pp_core::Direction;
    use pp_graph::{gen, GraphBuilder};
    use pp_telemetry::{CountingProbe, NullProbe};

    fn weighted(seed: u64) -> CsrGraph {
        gen::with_random_weights(&gen::rmat(7, 5, seed), 1, 1000, seed ^ 0xff)
    }

    fn policies() -> impl Iterator<Item = DirectionPolicy> {
        DirectionPolicy::sweep().into_iter().map(|(_, p)| p)
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..3 {
            let g = weighted(seed);
            let (kedges, kweight) = kruskal_seq(&g);
            for threads in [1, 4] {
                let engine = Engine::new(threads);
                let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                for policy in policies() {
                    let r = boruvka(&engine, &g, policy, &probes);
                    assert_eq!(r.total_weight, kweight, "seed {seed} x{threads} {policy:?}");
                    assert_eq!(r.edges.len(), kedges.len(), "seed {seed} edge count");
                }
            }
        }
    }

    #[test]
    fn unique_mst_matches_exactly() {
        // Distinct weights ⇒ unique MST ⇒ identical edge sets.
        let g = GraphBuilder::undirected(5)
            .weighted_edges([
                (0, 1, 10),
                (0, 2, 20),
                (1, 2, 30),
                (1, 3, 40),
                (2, 4, 50),
                (3, 4, 60),
            ])
            .build();
        let (mut kedges, kw) = kruskal_seq(&g);
        kedges.sort_unstable();
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = boruvka(&engine, &g, policy, &probes);
            assert_eq!(r.edges, kedges, "{policy:?}");
            assert_eq!(r.total_weight, kw);
        }
    }

    #[test]
    fn heavy_ties_still_yield_optimal_weight() {
        // All weights equal: any spanning tree is minimal; the canonical
        // (w, min, max) tie-break must keep the merge graph cycle-free.
        let g = GraphBuilder::undirected(8)
            .weighted_edges(
                gen::complete(8)
                    .edges()
                    .map(|(u, v, _)| (u, v, 7))
                    .collect::<Vec<_>>(),
            )
            .build();
        let engine = Engine::new(4);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = boruvka(&engine, &g, policy, &probes);
            assert_eq!(r.total_weight, 7 * 7, "{policy:?}");
            assert_eq!(r.edges.len(), 7);
        }
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let g = GraphBuilder::undirected(6)
            .weighted_edges([(0, 1, 3), (1, 2, 4), (3, 4, 1), (4, 5, 2)])
            .build();
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in policies() {
            let r = boruvka(&engine, &g, policy, &probes);
            assert_eq!(r.edges.len(), 4, "{policy:?}");
            assert_eq!(r.total_weight, 10);
        }
    }

    #[test]
    fn report_exposes_fm_bmt_m_phase_structure() {
        let g = gen::with_random_weights(&gen::path(64), 1, 9, 4);
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = boruvka(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        // Phases cycle FM, BMT, M; the last iteration stops after its BMT.
        assert_eq!(r.report.phases % 3, 2, "final iteration has no merge");
        assert!(r.iterations() >= 2 && r.iterations() <= 8, "log-ish rounds");
        for p in 0..r.report.phases {
            let rounds: Vec<_> = r.report.phase_rounds(p).collect();
            assert_eq!(rounds.len(), 1, "every MST phase is single-round");
            match MstPhaseKind::of(p) {
                MstPhaseKind::FindMin | MstPhaseKind::Merge => {
                    assert_eq!(rounds[0].frontier, 64, "all vertices sweep")
                }
                MstPhaseKind::BuildMergeTree => {
                    assert!(rounds[0].frontier <= 64, "active supervertices")
                }
            }
        }
        // Supervertex counts (the BMT frontiers) decline monotonically.
        let bmt_sizes: Vec<usize> = (0..r.report.phases)
            .filter(|&p| MstPhaseKind::of(p) == MstPhaseKind::BuildMergeTree)
            .flat_map(|p| r.report.phase_rounds(p).map(|s| s.frontier))
            .collect();
        assert!(bmt_sizes.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn push_uses_cas_pull_does_not_and_pa_push_removes_them() {
        let g = weighted(9);
        let engine = Engine::new(4);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        boruvka(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Push),
            &probes,
        );
        assert!(probes.merged().atomics > 0, "FM push must CAS-min");

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        boruvka(
            &engine,
            &g,
            DirectionPolicy::Fixed(Direction::Pull),
            &probes,
        );
        assert_eq!(probes.merged().atomics, 0, "FM pull is sync-free");
        assert_eq!(probes.merged().locks, 0);

        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let (kedges, kweight) = kruskal_seq(&g);
        let run = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .mode(ExecutionMode::PartitionAware)
            .run(&g, MstProgram::new(&g));
        assert_eq!(run.output.1, kweight, "PA push matches Kruskal");
        assert_eq!(run.output.0.len(), kedges.len());
        let pa = probes.merged();
        assert_eq!(pa.atomics, 0, "owner-computes FM push must not CAS");
        assert!(pa.remote_sends > 0, "RMAT cuts across 4 parts");
    }

    #[test]
    fn empty_and_single_vertex_and_edgeless() {
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let empty = GraphBuilder::undirected(0)
            .weighted_edges(std::iter::empty::<(u32, u32, u32)>())
            .build();
        let r = boruvka(&engine, &empty, DirectionPolicy::adaptive(), &probes);
        assert!(r.edges.is_empty());
        assert_eq!(r.report.phases, 0, "nothing ran on the empty graph");
        let single = GraphBuilder::undirected(3)
            .weighted_edges(std::iter::empty::<(u32, u32, u32)>())
            .build();
        let r = boruvka(&engine, &single, DirectionPolicy::adaptive(), &probes);
        assert_eq!(r.total_weight, 0);
        assert_eq!(r.report.phases, 2, "one FM + one BMT, no merge");
    }

    #[test]
    #[should_panic(expected = "requires edge weights")]
    fn rejects_unweighted() {
        MstProgram::new(&gen::path(3));
    }
}
