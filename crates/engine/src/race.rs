//! Owner-computes write discipline checker (feature `race-detect`).
//!
//! The §5 exchange path replaces per-edge atomics with an ownership
//! argument: during a phase, vertex-state slot `v` may be plain-written
//! only by the worker holding `v`'s part. The compiler cannot check that
//! argument — it lives in `unsafe` blocks and kernel contracts — so this
//! module makes it *dynamically* checkable: a shadow word per vertex-state
//! slot records `(phase epoch, writing part)`, every instrumented plain
//! write is run through [`note_state_write`], and two parts touching the
//! same slot in the same phase — or any write outside the claimed owner's
//! range — panics at the exact offending vertex.
//!
//! With the feature disabled (the default), every type here is a ZST and
//! every function an empty `#[inline(always)]` body: the exchange path
//! compiles to exactly what it was before.
//!
//! Instrumentation protocol (what [`super::partitioned::exchange`] does):
//!
//! 1. the round driver calls [`WriteTracker::advance_phase`] before each
//!    phase (traversal, delivery) — shadow words from older epochs are
//!    stale and never conflict;
//! 2. each worker installs a [`PhaseGuard`] for the part it claimed,
//!    scoping the owned range to the current thread;
//! 3. every delivery target is passed to [`note_state_write`] before the
//!    kernel's `apply_owned` runs. Kernels with writes beyond their own
//!    `v` slot can call it themselves — a kernel that writes a vertex it
//!    does not own is precisely the bug this feature exists to catch.

use pp_graph::VertexId;
use std::ops::Range;

#[cfg(feature = "race-detect")]
mod imp {
    use super::*;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Total writes checked process-wide; lets tests assert the detector
    /// actually saw traffic rather than silently no-opping.
    static CHECKED: AtomicU64 = AtomicU64::new(0);

    /// Shadow state for one partition-aware run: one word per vertex-state
    /// slot, encoding `epoch << 32 | part + 1` of the last checked write.
    pub struct WriteTracker {
        shadow: Vec<AtomicU64>,
        epoch: u32,
    }

    #[derive(Clone, Copy)]
    struct Scope {
        /// The tracker's shadow array. A raw pointer because the scope
        /// lives in TLS, which cannot carry a lifetime; the [`PhaseGuard`]
        /// that installs it borrows the tracker and clears the slot on
        /// drop, so the pointer never outlives the borrow.
        shadow: *const AtomicU64,
        len: usize,
        part: u32,
        start: VertexId,
        end: VertexId,
        epoch: u32,
    }

    thread_local! {
        static SCOPE: Cell<Option<Scope>> = const { Cell::new(None) };
    }

    impl WriteTracker {
        /// Shadow array for `n` vertex-state slots.
        pub fn new(n: usize) -> Self {
            Self {
                shadow: (0..n).map(|_| AtomicU64::new(0)).collect(),
                epoch: 0,
            }
        }

        /// Starts a new phase: older shadow words become stale. `&mut`
        /// because phases are separated by the exchange barrier — no
        /// worker holds a guard while the driver advances.
        pub fn advance_phase(&mut self) {
            self.epoch = self.epoch.wrapping_add(1);
        }

        /// Scopes the current thread to `part` and its owned `range` until
        /// the guard drops. Nesting restores the outer scope.
        pub fn scope(&self, part: usize, range: Range<VertexId>) -> PhaseGuard<'_> {
            let scope = Scope {
                shadow: self.shadow.as_ptr(),
                len: self.shadow.len(),
                part: part as u32,
                start: range.start,
                end: range.end,
                epoch: self.epoch,
            };
            let prev = SCOPE.with(|s| s.replace(Some(scope)));
            PhaseGuard {
                prev,
                _tracker: std::marker::PhantomData,
            }
        }
    }

    /// Clears (restores) the thread's phase scope on drop.
    pub struct PhaseGuard<'a> {
        prev: Option<Scope>,
        _tracker: std::marker::PhantomData<&'a WriteTracker>,
    }

    impl Drop for PhaseGuard<'_> {
        fn drop(&mut self) {
            SCOPE.with(|s| s.set(self.prev));
        }
    }

    /// Checks one plain write of vertex-state slot `v` against the
    /// thread's phase scope. Outside any scope (atomic-mode rounds, pull
    /// rounds) it is a no-op. Panics on a write outside the claimed
    /// owner's range, or when another part already wrote `v` this phase.
    pub fn note_state_write(v: VertexId) {
        SCOPE.with(|s| {
            let Some(sc) = s.get() else { return };
            // ORDERING: Relaxed — statistics counter; tests only compare
            // totals after the run's threads have joined.
            CHECKED.fetch_add(1, Ordering::Relaxed);
            assert!(
                sc.start <= v && v < sc.end,
                "race-detect: part {} plain-wrote vertex {} outside its owned range {}..{}",
                sc.part,
                v,
                sc.start,
                sc.end,
            );
            let word = ((sc.epoch as u64) << 32) | (sc.part as u64 + 1);
            debug_assert!((v as usize) < sc.len);
            // SAFETY: `v < len` (the range check above bounds it to the
            // owned range, which the tracker sized to the vertex count)
            // and the pointer is live for the guard's borrow of the
            // tracker.
            let slot = unsafe { &*sc.shadow.add(v as usize) };
            // ORDERING: Relaxed — the RMW's atomicity alone decides the
            // race: two parts swapping the same slot in the same epoch
            // see each other in *some* order, and whichever runs second
            // observes the first and panics. No other data rides on it.
            let prev = slot.swap(word, Ordering::Relaxed);
            let (prev_epoch, prev_part) = ((prev >> 32) as u32, prev & 0xffff_ffff);
            assert!(
                prev_epoch != sc.epoch || prev_part == 0 || prev_part == sc.part as u64 + 1,
                "race-detect: parts {} and {} both plain-wrote vertex {} in the same phase",
                prev_part - 1,
                sc.part,
                v,
            );
        });
    }

    /// Process-wide count of writes the detector has checked.
    pub fn checked_writes() -> u64 {
        // ORDERING: Relaxed — statistics counter read for assertions.
        CHECKED.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "race-detect"))]
mod imp {
    use super::*;

    /// Zero-sized stand-in: the feature is off, nothing is tracked.
    pub struct WriteTracker;

    impl WriteTracker {
        #[inline(always)]
        pub fn new(_n: usize) -> Self {
            WriteTracker
        }

        #[inline(always)]
        pub fn advance_phase(&mut self) {}

        #[inline(always)]
        pub fn scope(&self, _part: usize, _range: Range<VertexId>) -> PhaseGuard<'_> {
            PhaseGuard {
                _tracker: std::marker::PhantomData,
            }
        }
    }

    /// Zero-sized guard; dropping it does nothing.
    pub struct PhaseGuard<'a> {
        _tracker: std::marker::PhantomData<&'a WriteTracker>,
    }

    #[inline(always)]
    pub fn note_state_write(_v: VertexId) {}

    #[inline(always)]
    pub fn checked_writes() -> u64 {
        0
    }
}

pub use imp::{checked_writes, note_state_write, PhaseGuard, WriteTracker};

#[cfg(all(test, feature = "race-detect"))]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parts_pass_and_counter_advances() {
        let mut tr = WriteTracker::new(8);
        tr.advance_phase();
        let before = checked_writes();
        {
            let _g = tr.scope(0, 0..4);
            note_state_write(0);
            note_state_write(3);
        }
        {
            let _g = tr.scope(1, 4..8);
            note_state_write(4);
        }
        assert_eq!(checked_writes() - before, 3);
    }

    #[test]
    #[should_panic(expected = "outside its owned range")]
    fn out_of_range_write_panics() {
        let mut tr = WriteTracker::new(8);
        tr.advance_phase();
        let _g = tr.scope(0, 0..4);
        note_state_write(5);
    }

    #[test]
    #[should_panic(expected = "both plain-wrote vertex")]
    fn cross_owner_write_panics() {
        let mut tr = WriteTracker::new(8);
        tr.advance_phase();
        {
            // Part 1 legitimately owns slot 5 and writes it...
            let _g = tr.scope(1, 4..8);
            note_state_write(5);
        }
        // ...then part 0 claims a (buggy) range that also covers 5 and
        // writes it in the same phase.
        let _g = tr.scope(0, 0..8);
        note_state_write(5);
    }

    #[test]
    fn same_slot_across_phases_is_fine() {
        let mut tr = WriteTracker::new(8);
        tr.advance_phase();
        {
            let _g = tr.scope(1, 4..8);
            note_state_write(5);
        }
        tr.advance_phase();
        let _g = tr.scope(0, 0..8);
        note_state_write(5);
    }

    #[test]
    fn no_scope_means_no_check() {
        let before = checked_writes();
        note_state_write(1234);
        assert_eq!(checked_writes(), before);
    }

    #[test]
    fn nested_guard_restores_outer_scope() {
        let mut tr = WriteTracker::new(8);
        tr.advance_phase();
        let _outer = tr.scope(0, 0..4);
        {
            let _inner = tr.scope(1, 4..8);
            note_state_write(6);
        }
        // Back in part 0's scope: its own range must still be in force.
        note_state_write(2);
    }
}
