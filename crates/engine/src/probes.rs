//! Per-worker probe shards.
//!
//! A single shared [`CountingProbe`] turns every counted event into a
//! contended atomic increment — instrumentation that would distort the very
//! contention the engine is built to exercise. [`ProbeShards`] gives each
//! pool worker its own cache-line-padded probe; [`ProbeShards::merged`]
//! folds the shards back into one [`EventCounts`] snapshot, so Table-1
//! style totals still reconcile with what a single probe would have seen.

use pp_telemetry::{CountingProbe, EventCounts, NullProbe, Probe};

/// A probe that can serve as a per-worker shard: default-constructible and
/// able to surface its counts for merging.
pub trait ShardProbe: Probe + Default {
    /// This shard's event counts (zero for non-counting probes).
    fn shard_counts(&self) -> EventCounts {
        EventCounts::default()
    }
}

impl ShardProbe for NullProbe {}

impl ShardProbe for CountingProbe {
    fn shard_counts(&self) -> EventCounts {
        self.counts()
    }
}

/// Padding wrapper keeping neighbouring shards off one cache line.
#[repr(align(128))]
#[derive(Default)]
struct Padded<P>(P);

/// One probe per pool worker.
pub struct ProbeShards<P> {
    shards: Vec<Padded<P>>,
}

impl<P: ShardProbe> ProbeShards<P> {
    /// Shards for a pool of `workers` threads.
    pub fn new(workers: usize) -> Self {
        Self {
            shards: (0..workers.max(1)).map(|_| Padded::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether there are no shards (never true; pools have ≥ 1 thread).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The probe belonging to `worker` (wrapping modulo the shard count, so
    /// `ProbeShards::new(1)` funnels every worker through one probe — the
    /// layout the reconciliation tests compare against).
    #[inline]
    pub fn shard(&self, worker: usize) -> &P {
        &self.shards[worker % self.shards.len()].0
    }

    /// Field-wise sum of every shard's counts, via the one merge
    /// definition (`EventCounts: AddAssign`, defined next to the struct in
    /// `pp-telemetry` so the field list cannot drift from it).
    pub fn merged(&self) -> EventCounts {
        self.shards
            .iter()
            .map(|p| p.0.shard_counts())
            .fold(EventCounts::default(), |mut acc, c| {
                acc += c;
                acc
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_merge_to_the_total() {
        let shards: ProbeShards<CountingProbe> = ProbeShards::new(4);
        for w in 0..4 {
            for _ in 0..=w {
                shards.shard(w).read(0, 8);
            }
            shards.shard(w).atomic_rmw(0, 8);
        }
        let merged = shards.merged();
        assert_eq!(merged.reads, 1 + 2 + 3 + 4);
        assert_eq!(merged.atomics, 4);
    }

    #[test]
    fn null_shards_merge_to_zero() {
        let shards: ProbeShards<NullProbe> = ProbeShards::new(8);
        assert_eq!(shards.merged(), EventCounts::default());
        assert_eq!(shards.len(), 8);
    }

    #[test]
    fn shards_are_cache_line_separated() {
        let shards: ProbeShards<CountingProbe> = ProbeShards::new(2);
        let a = shards.shard(0) as *const _ as usize;
        let b = shards.shard(1) as *const _ as usize;
        assert!(b.abs_diff(a) >= 128);
    }
}
