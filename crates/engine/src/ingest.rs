//! Parallel edge-list ingestion on the engine pool.
//!
//! `pp_graph::io` exposes parsing as three composable stages —
//! [`pp_graph::io::shard_bounds`] (cut the buffer at line boundaries),
//! [`pp_graph::io::parse_shard`] (byte-level scan of one shard), and
//! [`pp_graph::io::assemble_shards`] (global weighted/mixed/count
//! decisions plus the one `GraphBuilder` pass). This module runs the
//! shard stage on the engine's persistent [`crate::Pool`], one
//! dynamically-claimed chunk per shard, so a multi-GB SNAP download
//! parses at memory bandwidth instead of single-core `str::parse` speed.
//!
//! Semantics are identical to the sequential reader by construction (the
//! same three stages run in both; only the schedule differs) and
//! oracle-checked in `tests/ingest.rs` — including error cases: a
//! malformed or arity-mixed file reports the same line in either path.

use pp_core::sync::SyncSlice;
use pp_graph::io::{self, ParseError, ShardEdges};
use pp_graph::CsrGraph;

use crate::ops::Engine;

/// Shards per pool thread: slack for the dynamic scheduler to absorb
/// comment-heavy or blank-line-heavy regions that parse faster than
/// edge-dense ones.
const SHARDS_PER_THREAD: usize = 4;

/// Minimum shard size: below this, the pool handshake costs more than the
/// parse, so small buffers collapse to a single inline shard.
const MIN_SHARD_BYTES: usize = 64 * 1024;

/// Parses an edge-list buffer on the engine pool. Drop-in parallel
/// equivalent of [`pp_graph::io::read_edge_list`] over in-memory bytes
/// (same grammar, same header handling, same errors).
pub fn read_edge_list_parallel(
    engine: &Engine,
    bytes: &[u8],
    min_vertices: usize,
) -> Result<CsrGraph, ParseError> {
    let target = (engine.threads() * SHARDS_PER_THREAD)
        .min(bytes.len() / MIN_SHARD_BYTES)
        .max(1);
    let bounds = io::shard_bounds(bytes, target);
    let mut slots: Vec<Option<Result<ShardEdges, ParseError>>> =
        (0..bounds.len()).map(|_| None).collect();
    {
        let out = SyncSlice::new(&mut slots);
        engine.pool().run(bounds.len(), &|_, s| {
            let (start, end, first_line) = bounds[s];
            let parsed = io::parse_shard(&bytes[start..end], first_line);
            // SAFETY: chunk indices are claimed exactly once, so slot `s`
            // has a single writer.
            unsafe { out.write(s, Some(parsed)) };
        });
    }
    let mut shards = Vec::with_capacity(slots.len());
    let mut first_err: Option<ParseError> = None;
    for slot in slots {
        match slot.expect("pool ran every shard") {
            Ok(shard) => shards.push(shard),
            // Keep the error of the *earliest* shard so the reported line
            // number matches what a sequential scan would hit first.
            Err(e) if first_err.is_none() => first_err = Some(e),
            Err(_) => {}
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    io::assemble_shards(shards, min_vertices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, io::read_edge_list};

    fn engine() -> Engine {
        Engine::new(4)
    }

    #[test]
    fn matches_the_sequential_reader_on_messy_input() {
        let text = "# header n=12 weighted=0\n\n0 1\r\n 2 3 \n# mid\n4 5\n\r\n6 7\n";
        let seq = read_edge_list(text.as_bytes(), 0).unwrap();
        let par = read_edge_list_parallel(&engine(), text.as_bytes(), 0).unwrap();
        assert_eq!(par, seq);
        assert_eq!(par.num_vertices(), 12, "header n= honoured");
    }

    #[test]
    fn matches_on_a_large_generated_graph_at_several_thread_counts() {
        let g = gen::rmat(10, 8, 7);
        let mut buf = Vec::new();
        pp_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let seq = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(seq, g);
        for threads in [1, 2, 4] {
            let par = read_edge_list_parallel(&Engine::new(threads), &buf, 0).unwrap();
            assert_eq!(par, g, "threads={threads}");
        }
    }

    #[test]
    fn reports_the_earliest_error_like_the_sequential_reader() {
        // Two malformed lines in (with enough padding) different shards:
        // the parallel reader must report the first, as sequential does.
        let mut text = String::from("0 1\nbad\n");
        for i in 0..2000 {
            text.push_str(&format!("{} {}\n", i, i + 1));
        }
        text.push_str("also bad\n");
        let seq_err = read_edge_list(text.as_bytes(), 0).unwrap_err();
        let par_err = read_edge_list_parallel(&engine(), text.as_bytes(), 0).unwrap_err();
        assert_eq!(format!("{par_err}"), format!("{seq_err}"));
    }

    #[test]
    fn detects_arity_mixing_across_shard_boundaries() {
        let mut text = String::new();
        for i in 0..3000 {
            text.push_str(&format!("{} {} 5\n", i, i + 1));
        }
        text.push_str("0 1\n"); // the flip, far from the weighted lines
        let seq_err = read_edge_list(text.as_bytes(), 0).unwrap_err();
        let par_err = read_edge_list_parallel(&engine(), text.as_bytes(), 0).unwrap_err();
        assert_eq!(format!("{par_err}"), format!("{seq_err}"));
        assert!(format!("{par_err}").contains("line 3001"), "{par_err}");
    }
}
