//! A persistent scoped thread pool with dynamic chunk claiming.
//!
//! Workers are spawned once per [`Pool`] and parked between rounds, so the
//! per-round cost is one mutex/condvar handshake rather than thread
//! creation. Within a round, work is distributed *dynamically*: chunks are
//! claimed from a shared atomic cursor, so a worker that drew cheap chunks
//! keeps pulling more while a worker stuck on a heavy chunk does not become
//! the critical path (the load-balancing concern §6 of the paper raises for
//! skewed degree distributions).
//!
//! The caller participates in every round as worker 0; a pool of `t`
//! threads therefore spawns `t - 1` OS workers, and `Pool::new(1)` runs
//! everything inline with zero synchronization.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pp_telemetry::timing::{Clock, WorkerLap};

/// The payload of a panicking chunk, carried back to the round's caller.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// The closure type a round executes: `(worker, chunk)`. (`'static` here is
/// a storage artifact of [`RawTask`]; `Pool::run` accepts any lifetime and
/// erases it, see the safety comments.)
type Task = dyn Fn(usize, usize) + Sync + 'static;

/// Type-erased pointer to the current round's task. The pointer is only
/// dereferenced between the epoch publication and the round's completion
/// handshake, during which the caller is blocked in [`Pool::run`] keeping
/// the referent alive.
#[derive(Clone, Copy)]
struct RawTask(*const Task);

// SAFETY: the raw pointer crosses threads only for the duration of a round;
// `Pool::run` does not return until every worker has finished with it.
unsafe impl Send for RawTask {}

struct State {
    epoch: u64,
    task: Option<RawTask>,
    /// Workers that have not yet finished the current round.
    active: usize,
    shutdown: bool,
}

/// One worker's lap ledger, cache-line-padded so concurrent updates from
/// neighbouring workers never share a line (the same layout discipline as
/// `ProbeShards`). The `round_*` cells are per-round scratch: each worker
/// stores its own round totals there (single writer), and the round's
/// caller folds them into the running totals once the barrier has passed.
#[repr(align(128))]
#[derive(Default)]
struct LapCell {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    chunks: AtomicU64,
    round_busy_ns: AtomicU64,
    round_chunks: AtomicU64,
}

struct Control {
    state: Mutex<State>,
    start: Condvar,
    done: Condvar,
    /// Next chunk index to claim (the dynamic scheduler).
    cursor: AtomicUsize,
    /// Number of chunks in the current round.
    chunks: AtomicUsize,
    /// First panic payload captured in the current round, resumed on the
    /// caller once the round completes.
    panic: Mutex<Option<PanicPayload>>,
    /// Whether rounds currently record per-worker laps. Off by default:
    /// the only cost then is one relaxed load per round and per claim
    /// loop.
    lap_recording: AtomicBool,
    /// One ledger per worker (caller is worker 0).
    laps: Vec<LapCell>,
}

/// A fixed-size worker pool executing rounds of dynamically-claimed chunks.
pub struct Pool {
    control: Arc<Control>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Serializes rounds: `Pool` is `Sync`, and the cursor/chunks/task state
    /// admits exactly one round in flight — a second concurrent `run` would
    /// otherwise reset the cursor mid-round and free a borrowed task early.
    round: Mutex<()>,
}

impl Pool {
    /// A pool using `threads` total threads (including the caller).
    /// `threads == 0` is promoted to the hardware parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let control = Arc::new(Control {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                active: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            chunks: AtomicUsize::new(0),
            panic: Mutex::new(None),
            lap_recording: AtomicBool::new(false),
            laps: (0..threads).map(|_| LapCell::default()).collect(),
        });
        let workers = (1..threads)
            .map(|w| {
                let control = Arc::clone(&control);
                std::thread::Builder::new()
                    .name(format!("pp-engine-{w}"))
                    .spawn(move || worker_loop(&control, w))
                    .expect("failed to spawn engine worker")
            })
            .collect();
        Self {
            control,
            workers,
            threads,
            round: Mutex::new(()),
        }
    }

    /// Total thread count (caller + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes one round: `f(worker, chunk)` is called exactly once for
    /// every `chunk in 0..chunks`, from `threads()` threads claiming chunks
    /// dynamically. Returns after every chunk has completed (a barrier).
    pub fn run(&self, chunks: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        // ORDERING: a standalone on/off flag guarding no other data; the
        // round handshake below orders everything that matters.
        let recording = self.control.lap_recording.load(Ordering::Relaxed);
        if self.workers.is_empty() || chunks == 1 {
            if recording {
                self.run_inline_recorded(chunks, f);
            } else {
                for c in 0..chunks {
                    f(0, c);
                }
            }
            return;
        }
        // One round at a time (see `round`); held until every worker is done
        // with this round's task pointer.
        let _round = self.round.lock().unwrap_or_else(|e| e.into_inner());
        let control = &*self.control;
        if recording {
            // ORDERING: workers are parked until the epoch bump below; the
            // state mutex' release/acquire publishes these zeroed cells.
            for cell in &control.laps {
                cell.round_busy_ns.store(0, Ordering::Relaxed);
                cell.round_chunks.store(0, Ordering::Relaxed);
            }
        }
        let round_clock = recording.then(Clock::start);
        {
            let mut st = control.state.lock().unwrap();
            // ORDERING: stored under the state mutex, read by workers only
            // after they observe the epoch bump under the same mutex — the
            // lock's release/acquire is the publication.
            control.cursor.store(0, Ordering::Relaxed);
            control.chunks.store(chunks, Ordering::Relaxed);
            // SAFETY: lifetime erasure — see `RawTask`; we block below
            // until every worker is done with the pointer.
            let raw =
                RawTask(unsafe { std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), &Task>(f) });
            st.task = Some(raw);
            st.active = self.workers.len();
            st.epoch += 1;
            control.start.notify_all();
        }
        claim_chunks(control, 0, f);
        let mut st = control.state.lock().unwrap();
        while st.active > 0 {
            st = control.done.wait(st).unwrap();
        }
        st.task = None;
        drop(st);
        if let Some(clock) = round_clock {
            // ORDERING: the workers' `round_*` stores happen-before this
            // fold — they precede the `active` decrement under the state
            // mutex, whose release/acquire pairs with the wait loop above,
            // so every access here can be relaxed.
            let wall = clock.now_ns();
            for cell in &control.laps {
                let busy = cell.round_busy_ns.load(Ordering::Relaxed);
                cell.busy_ns.fetch_add(busy, Ordering::Relaxed);
                cell.idle_ns
                    .fetch_add(wall.saturating_sub(busy), Ordering::Relaxed);
                cell.chunks
                    .fetch_add(cell.round_chunks.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        let payload = control
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(payload) = payload {
            // Surface the first failing chunk's own panic (message, file,
            // line), as if it had happened on the calling thread.
            resume_unwind(payload);
        }
    }

    /// The recorded variant of the inline fast path (single-threaded pool
    /// or single-chunk round): worker 0 does all the work; parked workers
    /// are charged the round's wall time as idle, so `busy + idle` stays
    /// comparable across workers whatever path a round took.
    fn run_inline_recorded(&self, chunks: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        let clock = Clock::start();
        let mut busy = 0u64;
        let mut last = 0u64;
        for c in 0..chunks {
            f(0, c);
            let now = clock.now_ns();
            busy += now - last;
            last = now;
        }
        let wall = clock.now_ns();
        let laps = &self.control.laps;
        // ORDERING: every thread but the caller is parked; these are
        // effectively single-threaded accumulations.
        laps[0].busy_ns.fetch_add(busy, Ordering::Relaxed);
        laps[0]
            .idle_ns
            .fetch_add(wall.saturating_sub(busy), Ordering::Relaxed);
        laps[0].chunks.fetch_add(chunks as u64, Ordering::Relaxed);
        for cell in &laps[1..] {
            cell.idle_ns.fetch_add(wall, Ordering::Relaxed);
        }
    }

    /// Switches per-worker lap recording on or off. Off (the default)
    /// costs one relaxed load per round; on, every executed chunk is
    /// bracketed by two clock reads and each round folds one `WorkerLap`
    /// entry per worker.
    ///
    /// Recording state and the ledgers are pool-global: a driver that
    /// wants laps for exactly one run (the `Runner` does) resets, enables,
    /// runs, disables, and reads — interleaving two recorded runs on one
    /// pool mixes their laps.
    pub fn set_lap_recording(&self, on: bool) {
        // ORDERING: a standalone flag; rounds in flight may observe either
        // value, which only changes whether they record, never what.
        self.control.lap_recording.store(on, Ordering::Relaxed);
    }

    /// Whether rounds currently record laps.
    pub fn lap_recording(&self) -> bool {
        // ORDERING: see `set_lap_recording`.
        self.control.lap_recording.load(Ordering::Relaxed)
    }

    /// Zeroes every worker's lap ledger.
    pub fn reset_laps(&self) {
        // ORDERING: callers reset between recorded runs (see
        // `set_lap_recording` docs), when no round is in flight.
        for cell in &self.control.laps {
            cell.busy_ns.store(0, Ordering::Relaxed);
            cell.idle_ns.store(0, Ordering::Relaxed);
            cell.chunks.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot of every worker's accumulated lap (index = worker id).
    pub fn laps(&self) -> Vec<WorkerLap> {
        // ORDERING: totals are folded only by round callers after the
        // round barrier (see `Pool::run`); reading them between rounds is
        // ordered by that same handshake.
        self.control
            .laps
            .iter()
            .map(|cell| WorkerLap {
                busy_ns: cell.busy_ns.load(Ordering::Relaxed),
                idle_ns: cell.idle_ns.load(Ordering::Relaxed),
                chunks_claimed: cell.chunks.load(Ordering::Relaxed),
            })
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.control.state.lock().unwrap();
            st.shutdown = true;
            self.control.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn claim_chunks(control: &Control, worker: usize, f: &(dyn Fn(usize, usize) + Sync)) {
    // ORDERING: `chunks` and `lap_recording` were stored before the epoch
    // bump under the state mutex that woke this worker; the lock pairing
    // publishes them, so relaxed loads suffice.
    let total = control.chunks.load(Ordering::Relaxed);
    let recording = control.lap_recording.load(Ordering::Relaxed);
    let mut busy_ns = 0u64;
    let mut claimed = 0u64;
    loop {
        // ORDERING: the claim needs atomicity only — each chunk index is
        // handed out exactly once, and chunk payloads synchronize through
        // the round's mutex/condvar handshake, not through the cursor.
        let c = control.cursor.fetch_add(1, Ordering::Relaxed);
        if c >= total {
            break;
        }
        let chunk_clock = recording.then(Clock::start);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(worker, c))) {
            let mut slot = control.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
        if let Some(clock) = chunk_clock {
            busy_ns += clock.now_ns();
            claimed += 1;
        }
    }
    if recording {
        // ORDERING: single writer per cell per round; the caller folds
        // these only after the round barrier (see `Pool::run`), whose
        // mutex pairing orders the stores before the fold's loads.
        let cell = &control.laps[worker];
        cell.round_busy_ns.store(busy_ns, Ordering::Relaxed);
        cell.round_chunks.store(claimed, Ordering::Relaxed);
    }
}

fn worker_loop(control: &Control, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut st = control.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(task) = st.task {
                        seen_epoch = st.epoch;
                        break task;
                    }
                }
                st = control.start.wait(st).unwrap();
            }
        };
        // SAFETY: the caller blocks in `run` until `active` reaches zero,
        // which happens only after this dereference window closes.
        claim_chunks(control, worker, unsafe { &*task.0 });
        let mut st = control.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            control.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = Pool::new(4);
        for chunks in [1usize, 2, 7, 64, 1000] {
            let hits: Vec<AtomicU64> = (0..chunks).map(|_| AtomicU64::new(0)).collect();
            pool.run(chunks, &|_, c| {
                hits[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn multiple_threads_participate() {
        let pool = Pool::new(4);
        let ids = Mutex::new(HashSet::new());
        pool.run(256, &|_, _| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn single_threaded_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        pool.run(16, &|w, _| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn rounds_are_barriers() {
        let pool = Pool::new(3);
        let counter = AtomicU64::new(0);
        for round in 0..50u64 {
            pool.run(13, &|_, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 13);
        }
    }

    #[test]
    fn worker_ids_are_dense_and_bounded() {
        let pool = Pool::new(4);
        let seen = Mutex::new(HashSet::new());
        pool.run(512, &|w, _| {
            std::thread::sleep(std::time::Duration::from_micros(20));
            seen.lock().unwrap().insert(w);
        });
        let seen = seen.into_inner().unwrap();
        assert!(seen.iter().all(|&w| w < 4));
        assert!(seen.contains(&0), "caller participates as worker 0");
    }

    #[test]
    fn concurrent_callers_serialize_rounds() {
        // Pool is Sync; two threads issuing rounds on the same pool must not
        // corrupt each other's chunk accounting.
        let pool = Pool::new(3);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..20 {
                    pool.run(17, &|_, _| {
                        a.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            s.spawn(|| {
                for _ in 0..20 {
                    pool.run(13, &|_, _| {
                        b.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(a.load(Ordering::Relaxed), 20 * 17);
        assert_eq!(b.load(Ordering::Relaxed), 20 * 13);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_with_their_payload() {
        let pool = Pool::new(2);
        pool.run(8, &|_, c| {
            if c == 3 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn laps_are_zero_when_recording_is_off() {
        let pool = Pool::new(3);
        pool.run(64, &|_, _| {
            std::hint::black_box(0u64);
        });
        assert!(!pool.lap_recording());
        assert!(pool.laps().iter().all(|l| *l == WorkerLap::default()));
    }

    #[test]
    fn recorded_laps_account_for_every_chunk() {
        let pool = Pool::new(3);
        pool.set_lap_recording(true);
        let rounds = 5usize;
        let chunks = 40usize;
        for _ in 0..rounds {
            pool.run(chunks, &|_, _| {
                std::thread::sleep(std::time::Duration::from_micros(100));
            });
        }
        pool.set_lap_recording(false);
        let laps = pool.laps();
        assert_eq!(laps.len(), 3, "one lap per pool thread");
        let total_chunks: u64 = laps.iter().map(|l| l.chunks_claimed).sum();
        assert_eq!(total_chunks, (rounds * chunks) as u64);
        // Every worker that claimed chunks accrued busy time; every worker
        // saw the same number of rounds, so busy + idle ≈ total wall is
        // roughly equal across workers.
        for lap in &laps {
            if lap.chunks_claimed > 0 {
                assert!(lap.busy_ns > 0);
            }
            assert!(lap.busy_ns + lap.idle_ns > 0);
        }
    }

    #[test]
    fn inline_paths_record_laps_too() {
        // Single-threaded pool: everything inline on worker 0.
        let pool = Pool::new(1);
        pool.set_lap_recording(true);
        pool.run(8, &|_, _| {
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        let laps = pool.laps();
        assert_eq!(laps.len(), 1);
        assert_eq!(laps[0].chunks_claimed, 8);
        assert!(laps[0].busy_ns > 0);

        // Multi-threaded pool, single chunk: inline on worker 0, the
        // parked workers charged idle.
        let pool = Pool::new(3);
        pool.set_lap_recording(true);
        pool.run(1, &|_, _| {
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        let laps = pool.laps();
        assert_eq!(laps[0].chunks_claimed, 1);
        assert!(laps[0].busy_ns > 0);
        assert!(laps[1].idle_ns > 0 && laps[2].idle_ns > 0);
        assert_eq!(laps[1].chunks_claimed, 0);
    }

    #[test]
    fn reset_laps_zeroes_the_ledgers() {
        let pool = Pool::new(2);
        pool.set_lap_recording(true);
        pool.run(16, &|_, _| {
            std::hint::black_box(0u64);
        });
        pool.reset_laps();
        assert!(pool.laps().iter().all(|l| *l == WorkerLap::default()));
    }

    #[test]
    fn pool_survives_a_panicked_round() {
        let pool = Pool::new(2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|_, _| panic!("boom"));
        }));
        let counter = AtomicU64::new(0);
        pool.run(10, &|_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
