//! The engine's frontier: the set of active vertices, in a sparse
//! (vertex-list) or dense (bitmap) representation, with the statistics the
//! direction policy switches on.
//!
//! Pushing wants the sparse form (it is the work list); pulling wants the
//! dense form (it is a membership oracle every scanned edge queries). The
//! engine converts between the two on demand and callers can also force a
//! representation. Conversions are O(n/64 + |F|).
//!
//! The out-edge total `|E_F|` is computed lazily on the first
//! [`Frontier::edge_count`] query and cached: building a frontier is O(|F|)
//! with no degree pre-pass, every policy query after the first is O(1), and
//! membership mutation ([`Frontier::insert`]) invalidates the cache.

use std::cell::Cell;

use pp_graph::{CsrGraph, VertexId};

/// Frontier representation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Repr {
    /// Active vertex list, in insertion order, duplicate-free.
    Sparse(Vec<VertexId>),
    /// One bit per vertex.
    Dense(Vec<u64>),
}

/// A set of active vertices plus the degree statistics (`|F|`, out-edges of
/// `F`) that drive [`crate::policy::DirectionPolicy`].
#[derive(Clone, Debug)]
pub struct Frontier {
    n: usize,
    len: usize,
    /// Cached `|E_F|`: `None` until the first query, invalidated by
    /// mutation. Representation changes keep it (membership is unchanged).
    edges: Cell<Option<u64>>,
    repr: Repr,
    /// Membership bitmap shadowing the sparse list, so incremental
    /// construction ([`Frontier::insert`]) pays O(1) per membership test
    /// instead of scanning the list (which made an n-insert build O(n²)).
    /// Built lazily by the first sparse insert, inherited for free from a
    /// dense→sparse conversion, and promoted back to the dense bitmap by
    /// [`Frontier::densify`]. Always in sync with the sparse list when
    /// present; unused (and absent) while the representation is dense.
    mask: Option<Vec<u64>>,
}

impl Frontier {
    /// The empty frontier over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            len: 0,
            edges: Cell::new(Some(0)),
            repr: Repr::Sparse(Vec::new()),
            mask: None,
        }
    }

    /// A single-vertex frontier.
    pub fn single(g: &CsrGraph, v: VertexId) -> Self {
        Self::from_vertices(g, vec![v])
    }

    /// A sparse frontier from a duplicate-free vertex list. O(|F|): the
    /// edge total is deferred until a policy (or operator) asks for it.
    pub fn from_vertices(g: &CsrGraph, vertices: Vec<VertexId>) -> Self {
        Self {
            n: g.num_vertices(),
            len: vertices.len(),
            edges: Cell::new(None),
            repr: Repr::Sparse(vertices),
            mask: None,
        }
    }

    /// The all-vertices frontier (dense), e.g. one PageRank iteration.
    pub fn full(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut bits = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = bits.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        Self {
            n,
            len: n,
            edges: Cell::new(Some(g.num_arcs() as u64)),
            repr: Repr::Dense(bits),
            mask: None,
        }
    }

    /// Number of vertices in the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of out-degrees of the active vertices — the quantity Beamer-style
    /// switching compares against `m/α`. Computed on first use, then served
    /// from the cache until the membership mutates.
    pub fn edge_count(&self, g: &CsrGraph) -> u64 {
        if let Some(e) = self.edges.get() {
            return e;
        }
        let e = match &self.repr {
            Repr::Sparse(list) => list.iter().map(|&v| g.degree(v) as u64).sum(),
            Repr::Dense(bits) => {
                let mut sum = 0u64;
                for (word_idx, &word) in bits.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let bit = word.trailing_zeros() as usize;
                        sum += g.degree((word_idx * 64 + bit) as VertexId) as u64;
                        word &= word - 1;
                    }
                }
                sum
            }
        };
        self.edges.set(Some(e));
        e
    }

    /// Whether the edge total is currently cached (test/diagnostic hook).
    pub fn edge_count_cached(&self) -> bool {
        self.edges.get().is_some()
    }

    /// Adds `v` to the set in its current representation; returns whether it
    /// was newly inserted. Invalidates the cached edge count.
    ///
    /// Amortized O(1): the sparse representation keeps a membership bitmap
    /// alongside the list (built once, on the first insert), so an n-insert
    /// incremental build is O(n + n/64) — not the O(n²) a list scan per
    /// membership test would cost.
    pub fn insert(&mut self, v: VertexId) -> bool {
        assert!((v as usize) < self.n, "vertex out of range");
        let (word, bit) = (v as usize / 64, 1u64 << (v as usize % 64));
        match &mut self.repr {
            Repr::Sparse(list) => {
                let mask = self.mask.get_or_insert_with(|| Self::bits_of(self.n, list));
                if mask[word] & bit != 0 {
                    return false;
                }
                mask[word] |= bit;
                list.push(v);
            }
            Repr::Dense(bits) => {
                if bits[word] & bit != 0 {
                    return false;
                }
                bits[word] |= bit;
            }
        }
        self.len += 1;
        self.edges.set(None);
        true
    }

    /// Whether `v` is active. O(1) dense or after any sparse insert (the
    /// membership bitmap answers); O(len) on a never-mutated sparse list.
    pub fn contains(&self, v: VertexId) -> bool {
        let (word, bit) = (v as usize / 64, 1u64 << (v as usize % 64));
        match (&self.repr, &self.mask) {
            (Repr::Dense(bits), _) | (Repr::Sparse(_), Some(bits)) => bits[word] & bit != 0,
            (Repr::Sparse(list), None) => list.contains(&v),
        }
    }

    /// Whether membership tests are currently O(1) — the dense bitmap or the
    /// sparse list's shadow mask is present (test/diagnostic hook, like
    /// [`Frontier::edge_count_cached`]).
    pub fn fast_membership(&self) -> bool {
        matches!(self.repr, Repr::Dense(_)) || self.mask.is_some()
    }

    /// The membership bitmap of `list` over `n` vertices.
    fn bits_of(n: usize, list: &[VertexId]) -> Vec<u64> {
        let mut bits = vec![0u64; n.div_ceil(64)];
        for &v in list {
            bits[v as usize / 64] |= 1u64 << (v as usize % 64);
        }
        bits
    }

    /// Whether the current representation is the dense bitmap.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Converts to the dense bitmap (no-op if already dense). Keeps the
    /// cached edge count: the member set is unchanged. A shadow mask left
    /// behind by sparse inserts is promoted for free.
    pub fn densify(&mut self) {
        if let Repr::Sparse(list) = &self.repr {
            let bits = match self.mask.take() {
                Some(mask) => mask,
                None => Self::bits_of(self.n, list),
            };
            self.repr = Repr::Dense(bits);
        }
    }

    /// Converts to the sparse list, in vertex order (no-op if sparse).
    /// Keeps the cached edge count: the member set is unchanged. The dense
    /// bits are retained as the sparse shadow mask, so later inserts start
    /// O(1) without a rebuild.
    pub fn sparsify(&mut self) {
        if let Repr::Dense(bits) = &mut self.repr {
            let bits = std::mem::take(bits);
            let mut list = Vec::with_capacity(self.len);
            for (word_idx, &word) in bits.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    list.push((word_idx * 64 + bit) as VertexId);
                    word &= word - 1;
                }
            }
            self.mask = Some(bits);
            self.repr = Repr::Sparse(list);
        }
    }

    /// The sparse vertex list (converting if needed).
    pub fn vertices(&mut self) -> &[VertexId] {
        self.sparsify();
        match &self.repr {
            Repr::Sparse(list) => list,
            Repr::Dense(_) => unreachable!(),
        }
    }

    /// The dense bitmap words (converting if needed).
    pub fn bits(&mut self) -> &[u64] {
        self.densify();
        match &self.repr {
            Repr::Dense(bits) => bits,
            Repr::Sparse(_) => unreachable!(),
        }
    }

    /// Ligra-style densification heuristic: a frontier this large is cheaper
    /// to consume as a bitmap than as a work list.
    ///
    /// The quantity and threshold are exactly the direction policy's pull
    /// trigger — load share `(|E_F| + |F|) / m` strictly above
    /// `1/`[`crate::policy::BEAMER_ALPHA`] — so a frontier is stored dense
    /// precisely when a push-state adaptive policy would schedule it pull.
    /// Routing both decisions through one constant keeps them from
    /// drifting apart (this method used to hardcode `m/20` while the
    /// policy owned α = 15).
    pub fn wants_dense(&self, g: &CsrGraph) -> bool {
        let m = g.num_arcs().max(1) as f64;
        (self.edge_count(g) + self.len as u64) as f64 / m > 1.0 / crate::policy::BEAMER_ALPHA
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;

    #[test]
    fn single_and_full_report_sizes() {
        let g = gen::path(100);
        let f = Frontier::single(&g, 0);
        assert_eq!(f.len(), 1);
        assert_eq!(f.edge_count(&g), 1, "endpoint of a path has degree 1");
        let full = Frontier::full(&g);
        assert_eq!(full.len(), 100);
        assert_eq!(full.edge_count(&g), g.num_arcs() as u64);
        assert!(full.contains(99));
    }

    #[test]
    fn densify_sparsify_round_trip() {
        let g = gen::rmat(7, 4, 1);
        let mut f = Frontier::from_vertices(&g, vec![3, 77, 12, 64, 63]);
        let edges = f.edge_count(&g);
        f.densify();
        assert!(f.is_dense());
        for v in [3u32, 12, 63, 64, 77] {
            assert!(f.contains(v));
        }
        assert!(!f.contains(4));
        f.sparsify();
        assert_eq!(f.vertices(), &[3, 12, 63, 64, 77], "sorted by vertex id");
        assert_eq!(f.edge_count(&g), edges, "stats survive conversion");
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn edge_count_is_lazy_cached_and_stable_across_transitions() {
        let g = gen::rmat(7, 4, 9);
        let mut f = Frontier::from_vertices(&g, vec![1, 2, 30, 99]);
        assert!(!f.edge_count_cached(), "construction must not pre-sum");
        let expected: u64 = [1u32, 2, 30, 99].iter().map(|&v| g.degree(v) as u64).sum();
        assert_eq!(f.edge_count(&g), expected);
        assert!(f.edge_count_cached());
        // Sparse → dense → sparse: cache survives (membership unchanged) and
        // the value still matches a fresh recomputation in each repr.
        f.densify();
        assert!(f.edge_count_cached());
        assert_eq!(f.edge_count(&g), expected);
        f.sparsify();
        assert_eq!(f.edge_count(&g), expected);
        // A dense frontier with a cold cache recomputes from the bitmap.
        let mut d = Frontier::from_vertices(&g, vec![1, 2, 30, 99]);
        d.densify();
        assert!(!d.edge_count_cached());
        assert_eq!(d.edge_count(&g), expected);
    }

    #[test]
    fn insert_invalidates_the_cache_in_both_reprs() {
        let g = gen::rmat(7, 4, 5);
        let mut f = Frontier::from_vertices(&g, vec![4, 8]);
        let before = f.edge_count(&g);
        assert!(f.insert(15));
        assert!(!f.edge_count_cached(), "mutation must invalidate");
        assert_eq!(f.edge_count(&g), before + g.degree(15) as u64);
        assert!(!f.insert(15), "duplicate insert is a no-op");
        assert!(f.edge_count_cached(), "no-op insert keeps the cache");
        assert_eq!(f.len(), 3);

        f.densify();
        let before = f.edge_count(&g);
        assert!(f.insert(23));
        assert_eq!(f.edge_count(&g), before + g.degree(23) as u64);
        assert!(f.contains(23));
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn full_masks_tail_bits() {
        let g = gen::path(70);
        let mut f = Frontier::full(&g);
        assert_eq!(f.len(), 70);
        let bits = f.bits().to_vec();
        assert_eq!(bits.len(), 2);
        assert_eq!(bits[1].count_ones(), 70 - 64);
        f.sparsify();
        assert_eq!(f.len(), 70);
        assert_eq!(f.vertices().len(), 70);
    }

    #[test]
    fn empty_frontier() {
        let g = gen::path(10);
        let f = Frontier::empty(10);
        assert!(f.is_empty());
        assert_eq!(f.edge_count(&g), 0);
        assert!(!f.contains(3));
    }

    #[test]
    fn incremental_insert_is_linear_and_duplicate_free() {
        // Regression: `insert` used to run `Vec::contains` on the sparse
        // list, making an n-insert incremental build O(n²). 100k inserts
        // (50k fresh + 50k duplicates) must finish in linear time — the old
        // quadratic path took tens of seconds on this size.
        const N: usize = 50_000;
        let g = gen::path(N);
        let mut f = Frontier::empty(N);
        let t0 = std::time::Instant::now();
        for v in 0..N as VertexId {
            assert!(f.insert(v), "fresh insert of {v}");
            assert!(!f.insert(v), "duplicate insert of {v} must be a no-op");
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "incremental build re-quadratized: {:?} for {N} inserts",
            t0.elapsed()
        );
        assert!(f.fast_membership(), "inserts must index membership");
        assert_eq!(f.len(), N);
        assert_eq!(f.vertices().len(), N, "list stayed duplicate-free");
        assert_eq!(f.edge_count(&g), g.num_arcs() as u64);
    }

    #[test]
    fn insert_mask_stays_in_sync_across_conversions() {
        let g = gen::rmat(7, 4, 2);
        let mut f = Frontier::from_vertices(&g, vec![10, 40]);
        assert!(!f.fast_membership(), "plain construction builds no mask");
        assert!(f.insert(5));
        assert!(f.fast_membership());
        assert!(f.contains(5) && f.contains(10) && !f.contains(6));
        // Sparse (masked) → dense: the mask is promoted, membership intact.
        f.densify();
        assert!(f.contains(5) && f.contains(40) && !f.contains(41));
        assert!(f.insert(41));
        // Dense → sparse: the bits are retained as the shadow mask, so the
        // very next insert is O(1) with no rebuild.
        f.sparsify();
        assert!(f.fast_membership());
        assert!(!f.insert(41), "membership survived the round trip");
        assert!(f.insert(42));
        assert_eq!(f.vertices(), &[5, 10, 40, 41, 42]);
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn wants_dense_grows_with_frontier() {
        let g = gen::complete(64);
        assert!(!Frontier::single(&g, 0).wants_dense(&g) || g.num_arcs() < 40);
        assert!(Frontier::full(&g).wants_dense(&g));
    }

    #[test]
    fn wants_dense_agrees_with_the_policy_pull_threshold() {
        // Drift guard: the densification heuristic and the adaptive
        // policy's pull trigger must be the same decision on the same
        // quantity. A fresh push-state AdaptiveSwitch schedules a frontier
        // pull iff that frontier wants the dense representation.
        use crate::policy::AdaptiveSwitch;
        use pp_core::Direction;
        for g in [gen::rmat(7, 4, 3), gen::path(200), gen::complete(40)] {
            for size in [0usize, 1, 2, 5, 17, 60, 150] {
                let size = size.min(g.num_vertices());
                let f = Frontier::from_vertices(&g, (0..size as VertexId).collect());
                let pull = AdaptiveSwitch::beamer().decide(&f, &g) == Direction::Pull;
                assert_eq!(
                    f.wants_dense(&g),
                    pull,
                    "|F|={size} on n={} m={}",
                    g.num_vertices(),
                    g.num_arcs()
                );
            }
        }
    }
}
