//! Online push⇄pull direction selection.
//!
//! Generalizes [`pp_core::strategies::SwitchController`] — the hysteresis
//! mechanism shared by direction-optimizing BFS and Generic-Switch coloring
//! (§5) — into a policy the engine consults every round. The measured load
//! share is the Beamer quantity: the fraction of all arcs incident to the
//! frontier, `|E_F| / m`. With the standard α = 15, β = 18 parameters the
//! policy goes dense (pull) when the frontier covers more than `1/α` of the
//! arcs and returns sparse (push) once it falls below `1/(αβ)` — the same
//! window as Beamer's `m/α` / `n/β` pair, expressed as one hysteresis band
//! so the decision cannot flap between rounds.

use pp_core::strategies::SwitchController;
use pp_core::Direction;
use pp_graph::CsrGraph;

use crate::frontier::Frontier;

/// Adaptive direction switching driven by frontier edge counts.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveSwitch {
    ctrl: SwitchController,
}

impl AdaptiveSwitch {
    /// A switch starting in `start` with Beamer-style divisors: pull above
    /// an arc share of `1/alpha`, push below `1/(alpha*beta)`.
    pub fn new(start: Direction, alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta >= 1.0, "divisors must be positive");
        Self {
            ctrl: SwitchController::new(start, 1.0 / alpha, 1.0 / (alpha * beta)),
        }
    }

    /// The standard direction-optimizing parameters (α = 15, β = 18).
    pub fn beamer() -> Self {
        Self::new(Direction::Push, 15.0, 18.0)
    }

    /// Observes a frontier and returns the direction for the next round.
    pub fn decide(&mut self, frontier: &Frontier, g: &CsrGraph) -> Direction {
        let m = g.num_arcs().max(1) as f64;
        self.ctrl
            .observe((frontier.edge_count(g) + frontier.len() as u64) as f64 / m)
    }

    /// The currently selected direction (without observing).
    pub fn current(&self) -> Direction {
        self.ctrl.current()
    }
}

/// How the engine chooses the direction of each round.
///
/// The decision quantity (the frontier's arc share) is independent of the
/// [`crate::partitioned::ExecutionMode`]: under `PartitionAware`, a round
/// the policy schedules as push simply pays buffered sends
/// ([`pp_telemetry::EventCounts::remote_sends`]) where the atomic engine
/// paid CAS events — the frontier statistics the policy switches on are
/// unchanged, so one policy composes with both modes.
#[derive(Clone, Copy, Debug)]
pub enum DirectionPolicy {
    /// Always push or always pull — the paper's baseline schedules.
    Fixed(Direction),
    /// Frontier-driven switching (§5 Generic-Switch / Beamer \[4\]).
    Adaptive(AdaptiveSwitch),
}

impl DirectionPolicy {
    /// The adaptive policy with standard parameters.
    pub fn adaptive() -> Self {
        DirectionPolicy::Adaptive(AdaptiveSwitch::beamer())
    }

    /// Every policy a sweep should cover, labeled for benchmark/test axes.
    /// Single source of truth: benches, experiments, and equivalence tests
    /// all iterate this, so a new policy variant is picked up everywhere.
    pub fn sweep() -> [(&'static str, DirectionPolicy); 3] {
        [
            ("push", DirectionPolicy::Fixed(Direction::Push)),
            ("pull", DirectionPolicy::Fixed(Direction::Pull)),
            ("adaptive", DirectionPolicy::adaptive()),
        ]
    }

    /// Direction for the round that will consume `frontier`.
    pub fn next(&mut self, frontier: &Frontier, g: &CsrGraph) -> Direction {
        match self {
            DirectionPolicy::Fixed(d) => *d,
            DirectionPolicy::Adaptive(sw) => sw.decide(frontier, g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;

    #[test]
    fn fixed_policy_never_moves() {
        let g = gen::complete(32);
        let mut p = DirectionPolicy::Fixed(Direction::Push);
        assert_eq!(p.next(&Frontier::full(&g), &g), Direction::Push);
        assert_eq!(p.next(&Frontier::empty(32), &g), Direction::Push);
    }

    #[test]
    fn adaptive_pulls_on_huge_frontiers_and_returns() {
        let g = gen::complete(64);
        let mut p = AdaptiveSwitch::beamer();
        assert_eq!(p.current(), Direction::Push);
        assert_eq!(p.decide(&Frontier::full(&g), &g), Direction::Pull);
        // A tiny frontier (one vertex of degree 63 out of m = 4032 arcs)
        // drops the share below 1/(αβ) ≈ 0.37%… not quite: 64/4032 ≈ 1.6%,
        // so it stays pull; the empty frontier forces the return to push.
        assert_eq!(p.decide(&Frontier::empty(64), &g), Direction::Push);
    }

    #[test]
    fn hysteresis_band_prevents_flapping() {
        let g = gen::complete(64);
        let mut p = AdaptiveSwitch::new(Direction::Push, 15.0, 18.0);
        // Mid-band frontier: above 1/(αβ), below 1/α — keeps whatever the
        // current direction is.
        let mid = Frontier::from_vertices(&g, vec![0, 1]);
        assert_eq!(p.decide(&mid, &g), Direction::Push);
        assert_eq!(p.decide(&Frontier::full(&g), &g), Direction::Pull);
        assert_eq!(p.decide(&mid, &g), Direction::Pull, "still inside band");
    }
}
