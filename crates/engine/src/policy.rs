//! Online push⇄pull direction selection.
//!
//! Generalizes [`pp_core::strategies::SwitchController`] — the hysteresis
//! mechanism shared by direction-optimizing BFS and Generic-Switch coloring
//! (§5) — into a policy the engine consults every round. The measured load
//! share is the Beamer quantity: the work a sparse (push) step would do as
//! a fraction of the whole graph, `(|E_F| + |F|) / m` — the frontier's
//! out-edges *plus* one touch per frontier vertex, exactly the
//! edges-plus-vertices total the engine's degree-aware chunking weighs.
//! With the standard α = 15, β = 18 parameters the policy goes dense
//! (pull) when that share rises above `1/α` and returns sparse (push) once
//! it falls below `1/(αβ)` — the same window as Beamer's `m/α` / `n/β`
//! pair, expressed as one hysteresis band so the decision cannot flap
//! between rounds. The `+ |F|` term matters right at the threshold: a
//! frontier of many low-degree vertices can cross into pull on vertex
//! count alone (see the module tests for the exact crossing).

use pp_core::strategies::SwitchController;
use pp_core::Direction;
use pp_graph::CsrGraph;

use crate::frontier::Frontier;

/// Beamer's α: the pull threshold. A frontier whose load share
/// `(|E_F| + |F|) / m` rises above `1/BEAMER_ALPHA` is scheduled pull —
/// and, by the same token, stored dense ([`Frontier::wants_dense`] routes
/// through this constant, so the representation heuristic and the
/// direction policy cannot drift apart).
pub const BEAMER_ALPHA: f64 = 15.0;

/// Beamer's β: the return-to-push divisor. The policy goes back to push
/// once the load share falls below `1/(BEAMER_ALPHA * BEAMER_BETA)`.
pub const BEAMER_BETA: f64 = 18.0;

/// One round's direction decision, recorded so a report can replay *why*
/// the policy chose what it chose: the observed Beamer share, the
/// hysteresis edge it was compared against, and whether the comparison
/// moved the direction.
///
/// `observed_share > threshold` with `dir == Pull` (or `< threshold` with
/// `Push`) reconstructs the adaptive rule exactly; `Fixed` policies record
/// a zero threshold and never switch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyDecision {
    /// The Beamer load share observed: `(|E_F| + |F|) / m`.
    pub observed_share: f64,
    /// The hysteresis edge the share was compared against: `1/α` while
    /// pushing (cross above → pull), `1/(αβ)` while pulling (cross below
    /// → push). `0.0` for fixed policies (no comparison happened).
    pub threshold: f64,
    /// The direction chosen for the round.
    pub dir: Direction,
    /// Whether this decision changed direction relative to the previous
    /// round.
    pub switched: bool,
}

/// Adaptive direction switching driven by frontier edge counts.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveSwitch {
    ctrl: SwitchController,
}

impl AdaptiveSwitch {
    /// A switch starting in `start` with Beamer-style divisors: pull above
    /// an arc share of `1/alpha`, push below `1/(alpha*beta)`.
    pub fn new(start: Direction, alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta >= 1.0, "divisors must be positive");
        Self {
            ctrl: SwitchController::new(start, 1.0 / alpha, 1.0 / (alpha * beta)),
        }
    }

    /// The standard direction-optimizing parameters
    /// ([`BEAMER_ALPHA`], [`BEAMER_BETA`]).
    pub fn beamer() -> Self {
        Self::new(Direction::Push, BEAMER_ALPHA, BEAMER_BETA)
    }

    /// Observes a frontier and returns the direction for the next round.
    /// The observed share is `(|E_F| + |F|) / m` (see the module docs).
    pub fn decide(&mut self, frontier: &Frontier, g: &CsrGraph) -> Direction {
        self.decide_recorded(frontier, g).dir
    }

    /// [`AdaptiveSwitch::decide`], returning the full decision record.
    pub fn decide_recorded(&mut self, frontier: &Frontier, g: &CsrGraph) -> PolicyDecision {
        let m = g.num_arcs().max(1) as f64;
        let share = (frontier.edge_count(g) + frontier.len() as u64) as f64 / m;
        let prev = self.ctrl.current();
        // The edge the controller actually tests this round: while pushing
        // the only way out is up through `to_pull_above`; while pulling,
        // down through `to_push_below`.
        let threshold = match prev {
            Direction::Push => self.ctrl.to_pull_above,
            Direction::Pull => self.ctrl.to_push_below,
        };
        let dir = self.ctrl.observe(share);
        PolicyDecision {
            observed_share: share,
            threshold,
            dir,
            switched: dir != prev,
        }
    }

    /// The currently selected direction (without observing).
    pub fn current(&self) -> Direction {
        self.ctrl.current()
    }
}

/// How the engine chooses the direction of each round.
///
/// The decision quantity (the frontier's arc share) is independent of the
/// [`crate::partitioned::ExecutionMode`]: under `PartitionAware`, a round
/// the policy schedules as push simply pays buffered sends
/// ([`pp_telemetry::EventCounts::remote_sends`]) where the atomic engine
/// paid CAS events — the frontier statistics the policy switches on are
/// unchanged, so one policy composes with both modes.
#[derive(Clone, Copy, Debug)]
pub enum DirectionPolicy {
    /// Always push or always pull — the paper's baseline schedules.
    Fixed(Direction),
    /// Frontier-driven switching (§5 Generic-Switch / Beamer \[4\]).
    Adaptive(AdaptiveSwitch),
}

impl DirectionPolicy {
    /// The adaptive policy with standard parameters.
    pub fn adaptive() -> Self {
        DirectionPolicy::Adaptive(AdaptiveSwitch::beamer())
    }

    /// Every policy a sweep should cover, labeled for benchmark/test axes.
    /// Single source of truth: benches, experiments, and equivalence tests
    /// all iterate this, so a new policy variant is picked up everywhere.
    pub fn sweep() -> [(&'static str, DirectionPolicy); 3] {
        [
            ("push", DirectionPolicy::Fixed(Direction::Push)),
            ("pull", DirectionPolicy::Fixed(Direction::Pull)),
            ("adaptive", DirectionPolicy::adaptive()),
        ]
    }

    /// Direction for the round that will consume `frontier`.
    pub fn next(&mut self, frontier: &Frontier, g: &CsrGraph) -> Direction {
        self.next_decision(frontier, g).dir
    }

    /// [`DirectionPolicy::next`], returning the full [`PolicyDecision`]
    /// record. Fixed policies still report the observed share (the
    /// frontier's edge count is cached, so the read is cheap) with a zero
    /// threshold and `switched: false`.
    pub fn next_decision(&mut self, frontier: &Frontier, g: &CsrGraph) -> PolicyDecision {
        match self {
            DirectionPolicy::Fixed(d) => {
                let m = g.num_arcs().max(1) as f64;
                PolicyDecision {
                    observed_share: (frontier.edge_count(g) + frontier.len() as u64) as f64 / m,
                    threshold: 0.0,
                    dir: *d,
                    switched: false,
                }
            }
            DirectionPolicy::Adaptive(sw) => sw.decide_recorded(frontier, g),
        }
    }

    /// The direction the policy would pick right now, without observing a
    /// frontier (and so without moving the adaptive hysteresis). Vertex-step
    /// rounds ([`crate::program::PhaseKernel::VertexStep`]) record this.
    pub fn current(&self) -> Direction {
        match self {
            DirectionPolicy::Fixed(d) => *d,
            DirectionPolicy::Adaptive(sw) => sw.current(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;

    #[test]
    fn fixed_policy_never_moves() {
        let g = gen::complete(32);
        let mut p = DirectionPolicy::Fixed(Direction::Push);
        assert_eq!(p.next(&Frontier::full(&g), &g), Direction::Push);
        assert_eq!(p.next(&Frontier::empty(32), &g), Direction::Push);
    }

    #[test]
    fn adaptive_pulls_on_huge_frontiers_and_returns() {
        let g = gen::complete(64);
        let mut p = AdaptiveSwitch::beamer();
        assert_eq!(p.current(), Direction::Push);
        assert_eq!(p.decide(&Frontier::full(&g), &g), Direction::Pull);
        // A tiny frontier (one vertex of degree 63 out of m = 4032 arcs)
        // drops the share below 1/(αβ) ≈ 0.37%… not quite: 64/4032 ≈ 1.6%,
        // so it stays pull; the empty frontier forces the return to push.
        assert_eq!(p.decide(&Frontier::empty(64), &g), Direction::Push);
    }

    #[test]
    fn observed_share_includes_the_frontier_size_term() {
        // The exact crossing: 3 pendant vertices {0, 1, 2} hang off a
        // 31-vertex chain (3..=33), so m = 33 edges = 66 arcs and the pull
        // threshold sits at m/α = 66/15 = 4.4 weighted units.
        let mut b = pp_graph::GraphBuilder::undirected(34);
        for u in 3u32..33 {
            b.add_edge(u, u + 1);
        }
        for p in 0u32..3 {
            b.add_edge(p, p + 3);
        }
        let g = b.build();
        assert_eq!(g.num_arcs(), 66);
        let mut p = AdaptiveSwitch::beamer();
        // {0, 1}: |E_F| + |F| = 2 + 2 = 4 < 4.4 — stays push.
        let two = Frontier::from_vertices(&g, vec![0, 1]);
        assert_eq!(p.decide(&two, &g), Direction::Push);
        // {0, 1, 2}: |E_F| + |F| = 3 + 3 = 6 > 4.4 — crosses into pull,
        // even though the out-edge share alone (3 ≤ 4.4) would not. This is
        // the `+ |F|` term the module docs describe: the Beamer quantity
        // counts the per-vertex touches of a sparse step, not just its
        // edges.
        let three = Frontier::from_vertices(&g, vec![0, 1, 2]);
        assert_eq!(p.decide(&three, &g), Direction::Pull);
        assert_eq!(p.current(), Direction::Pull);
    }

    #[test]
    fn decisions_record_share_threshold_and_switches() {
        let g = gen::complete(64);
        let mut p = DirectionPolicy::adaptive();
        let d = p.next_decision(&Frontier::full(&g), &g);
        assert_eq!(d.dir, Direction::Pull);
        assert!(d.switched, "full frontier flips the fresh push policy");
        assert!((d.threshold - 1.0 / BEAMER_ALPHA).abs() < 1e-12);
        assert!(d.observed_share > d.threshold, "the record explains itself");
        // Now pulling: the tested edge is the lower one, and an empty
        // frontier crosses back.
        let d = p.next_decision(&Frontier::empty(64), &g);
        assert_eq!(d.dir, Direction::Push);
        assert!(d.switched);
        assert!((d.threshold - 1.0 / (BEAMER_ALPHA * BEAMER_BETA)).abs() < 1e-12);
        assert!(d.observed_share < d.threshold);
        // Fixed policies observe but never compare.
        let mut f = DirectionPolicy::Fixed(Direction::Pull);
        let d = f.next_decision(&Frontier::full(&g), &g);
        assert_eq!(d.dir, Direction::Pull);
        assert!(!d.switched);
        assert_eq!(d.threshold, 0.0);
        assert!(d.observed_share > 1.0);
    }

    #[test]
    fn next_and_next_decision_agree() {
        let g = gen::complete(32);
        let mut a = DirectionPolicy::adaptive();
        let mut b = DirectionPolicy::adaptive();
        for f in [
            Frontier::from_vertices(&g, vec![0]),
            Frontier::full(&g),
            Frontier::from_vertices(&g, vec![1, 2]),
            Frontier::empty(32),
        ] {
            assert_eq!(a.next(&f, &g), b.next_decision(&f, &g).dir);
        }
    }

    #[test]
    fn hysteresis_band_prevents_flapping() {
        let g = gen::complete(64);
        let mut p = AdaptiveSwitch::new(Direction::Push, 15.0, 18.0);
        // Mid-band frontier: above 1/(αβ), below 1/α — keeps whatever the
        // current direction is.
        let mid = Frontier::from_vertices(&g, vec![0, 1]);
        assert_eq!(p.decide(&mid, &g), Direction::Push);
        assert_eq!(p.decide(&Frontier::full(&g), &g), Direction::Pull);
        assert_eq!(p.decide(&mid, &g), Direction::Pull, "still inside band");
    }
}
