//! A name → [`Program`] registry: every algorithm the engine ships,
//! runnable by string name with one configuration surface.
//!
//! The paper's evaluation drives many algorithms over many graphs from one
//! harness; this module is the dispatch table that makes that possible for
//! external drivers (the `ppgraph` CLI in `pp-bench`, scripts, CI smoke
//! tests) without each of them hand-wiring ten `Runner::run` call sites.
//! Each [`AlgoSpec`] knows its name (plus aliases), whether it needs edge
//! weights, and how to run itself under a [`RunConfig`]; the result packs
//! the unified [`RunReport`] with a small human/JSON-friendly summary of
//! the output (component counts, tree weight, reached vertices, …).
//!
//! [`Program`]: crate::program::Program

use pp_core::{bc::BcOptions, pagerank::PrOptions, sssp::SsspOptions};
use pp_graph::{CsrGraph, VertexId};
use pp_telemetry::{CountingProbe, MetricsLevel, NullProbe};

use crate::algo::{
    bc::BcProgram,
    bfs::BfsProgram,
    coloring::ColoringProgram,
    components::CcProgram,
    kcore::KCoreProgram,
    labelprop::LabelPropProgram,
    msbfs::{MsBfsProgram, SourceBatch, MAX_LANES},
    mst::MstProgram,
    pagerank::PageRankProgram,
    sssp::SsspProgram,
    triangles::TcProgram,
};
use crate::partitioned::ExecutionMode;
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::report::RunReport;
use crate::runner::Runner;
use crate::Engine;

/// Everything a registry run needs besides the graph. Construct with
/// [`RunConfig::new`] and override fields as needed.
///
/// Generic over the probe shard type: the default `NullProbe` keeps the
/// zero-overhead benchmark path; a `CountingProbe` config (paired with
/// [`all_counting`]/[`find_counting`]) additionally tallies Table-1 event
/// counts during the same run.
pub struct RunConfig<'a, P: ShardProbe = NullProbe> {
    /// The engine to schedule onto.
    pub engine: &'a Engine,
    /// Per-worker probe shards (sized to `engine.threads()`).
    pub probes: &'a ProbeShards<P>,
    /// Direction policy for every round.
    pub policy: DirectionPolicy,
    /// Push execution mode (atomic vs. §5 owner-computes).
    pub mode: ExecutionMode,
    /// How much run-wide observability to collect (decisions, timing,
    /// trace substrate). `Off` by default: the probe type alone decides
    /// what is counted, and nothing else is recorded.
    pub collect: MetricsLevel,
    /// Source vertex for rooted algorithms (BFS, SSSP).
    pub source: VertexId,
    /// Source *batch* for batched multi-source execution (`bfs --sources`
    /// / the `msbfs` alias): when non-empty, the run traverses all listed
    /// sources in one bit-parallel pass ([`crate::algo::msbfs`]) and
    /// `source` is ignored. Repeated sources share a lane; at most
    /// [`MAX_LANES`] distinct sources validate. Empty (the default) keeps
    /// the single-source path byte-identical to the pre-batch one.
    pub sources: Vec<VertexId>,
    /// Iteration cap for label propagation.
    pub lp_iters: usize,
    /// Source cap for betweenness centrality (`None` = all sources; exact
    /// BC is O(n·m) per source, so drivers default to a small cap).
    pub bc_sources: Option<usize>,
}

impl<'a, P: ShardProbe> RunConfig<'a, P> {
    /// Defaults: adaptive policy, atomic mode, metrics off, source 0, 20
    /// LP iterations, 8 BC sources.
    pub fn new(engine: &'a Engine, probes: &'a ProbeShards<P>) -> Self {
        Self {
            engine,
            probes,
            policy: DirectionPolicy::adaptive(),
            mode: ExecutionMode::Atomic,
            collect: MetricsLevel::Off,
            source: 0,
            sources: Vec::new(),
            lp_iters: 20,
            bc_sources: Some(8),
        }
    }

    fn runner(&self) -> Runner<'a, P> {
        Runner::new(self.engine, self.probes)
            .policy(self.policy)
            .mode(self.mode)
            .metrics(self.collect)
    }
}

/// Why a registry run was refused before any kernel executed.
///
/// The registry sits behind untrusted drivers now (the `pp-serve` query
/// service feeds it socket input): bad input must come back as a value the
/// driver can render, not a panic that kills the process. Every variant
/// corresponds to a validation [`AlgoSpec::validate`] performs up front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// No registered algorithm matches the name or any alias.
    UnknownAlgo(String),
    /// A rooted algorithm's source vertex is outside `0..n`.
    SourceOutOfRange {
        /// The requested source.
        source: VertexId,
        /// The graph's vertex count.
        n: usize,
    },
    /// The algorithm requires edge weights and the graph has none.
    NeedsWeights {
        /// The algorithm that refused.
        algo: &'static str,
    },
    /// A configuration field holds a value no run can honor.
    InvalidParam {
        /// The offending [`RunConfig`] field.
        param: &'static str,
        /// Why the value is unusable.
        reason: &'static str,
    },
}

impl RunError {
    /// A stable machine-readable tag for each variant — what the serve
    /// protocol puts in its `error.kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::UnknownAlgo(_) => "unknown_algo",
            RunError::SourceOutOfRange { .. } => "source_out_of_range",
            RunError::NeedsWeights { .. } => "needs_weights",
            RunError::InvalidParam { .. } => "bad_param",
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownAlgo(name) => {
                write!(f, "unknown algorithm: {name} (see `ppgraph algos`)")
            }
            RunError::SourceOutOfRange { source, n } => {
                write!(f, "source {source} out of range (n = {n})")
            }
            RunError::NeedsWeights { algo } => {
                write!(f, "{algo} requires edge weights")
            }
            RunError::InvalidParam { param, reason } => {
                write!(f, "invalid {param}: {reason}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// One completed registry run: the unified report plus a summary of the
/// program's output as `(fact, value)` pairs.
#[derive(Clone, Debug)]
pub struct AlgoRun {
    /// Per-round direction/frontier/edge statistics.
    pub report: RunReport,
    /// Output digest, e.g. `("components", "17")` for CC.
    pub summary: Vec<(&'static str, String)>,
}

/// A registered algorithm, monomorphized for probe type `P` (the two
/// shipped tables are [`all`] for `NullProbe` and [`all_counting`] for
/// `CountingProbe` — both are stamped from one list by `registry_table!`,
/// so they cannot drift apart).
pub struct AlgoSpec<P: ShardProbe + 'static = NullProbe> {
    /// Canonical name (`ppgraph run <name>`).
    pub name: &'static str,
    /// Accepted alternative names.
    pub aliases: &'static [&'static str],
    /// One-line description with the paper section it reproduces.
    pub description: &'static str,
    /// Whether the graph must carry edge weights.
    pub needs_weights: bool,
    /// Whether the run is rooted at `cfg.source` (BFS, SSSP) — rooted
    /// algorithms validate the source against the graph's vertex count.
    pub rooted: bool,
    /// Whether the algorithm accepts a multi-source batch
    /// (`cfg.sources`) — only `bfs` dispatches the bit-parallel MS-BFS
    /// path; everything else rejects a non-empty batch up front.
    pub batched: bool,
    run: fn(&RunConfig<'_, P>, &CsrGraph) -> AlgoRun,
}

impl<P: ShardProbe> AlgoSpec<P> {
    /// Checks that `cfg` and `g` make a runnable pair, without running
    /// anything: weights present where required, a rooted source in range,
    /// parameter values a run can honor. This is the complete list of
    /// preconditions — a config that validates cannot panic inside
    /// [`AlgoSpec::try_run`] on account of its input.
    pub fn validate(&self, cfg: &RunConfig<'_, P>, g: &CsrGraph) -> Result<(), RunError> {
        if self.needs_weights && !g.is_weighted() {
            return Err(RunError::NeedsWeights { algo: self.name });
        }
        if self.rooted && cfg.sources.is_empty() && (cfg.source as usize) >= g.num_vertices() {
            return Err(RunError::SourceOutOfRange {
                source: cfg.source,
                n: g.num_vertices(),
            });
        }
        if !cfg.sources.is_empty() {
            if !self.batched {
                return Err(RunError::InvalidParam {
                    param: "sources",
                    reason: "this algorithm runs single-source (a batch needs bfs/msbfs)",
                });
            }
            for &s in &cfg.sources {
                if (s as usize) >= g.num_vertices() {
                    return Err(RunError::SourceOutOfRange {
                        source: s,
                        n: g.num_vertices(),
                    });
                }
            }
            // Repeated sources are legal (they fold onto one lane in the
            // run path); only the *distinct* count is bounded by the lane
            // width of the mask words.
            if distinct(&cfg.sources) > MAX_LANES {
                return Err(RunError::InvalidParam {
                    param: "sources",
                    reason: "a batch holds at most 64 distinct sources",
                });
            }
        }
        if cfg.lp_iters == 0 {
            return Err(RunError::InvalidParam {
                param: "lp_iters",
                reason: "must be >= 1",
            });
        }
        if cfg.bc_sources == Some(0) {
            return Err(RunError::InvalidParam {
                param: "bc_sources",
                reason: "must be >= 1 (omit the cap to run every source)",
            });
        }
        Ok(())
    }

    /// Runs the algorithm on `g` under `cfg`, refusing bad input as a
    /// [`RunError`] instead of panicking — the entry point for drivers fed
    /// from outside the process (the `pp-serve` query loop, the `ppgraph`
    /// CLI).
    pub fn try_run(&self, cfg: &RunConfig<'_, P>, g: &CsrGraph) -> Result<AlgoRun, RunError> {
        self.validate(cfg, g)?;
        Ok((self.run)(cfg, g))
    }

    /// Runs the algorithm on `g` under `cfg`.
    ///
    /// # Panics
    /// Panics with the [`RunError`] message if [`AlgoSpec::validate`]
    /// refuses the input (e.g. the algorithm requires edge weights and `g`
    /// has none) — callers that cannot guarantee their input use
    /// [`AlgoSpec::try_run`].
    pub fn run(&self, cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
        self.try_run(cfg, g).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Whether `name` matches the canonical name or an alias
    /// (ASCII-case-insensitively).
    pub fn matches(&self, name: &str) -> bool {
        self.name.eq_ignore_ascii_case(name)
            || self.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
    }
}

/// Every registered algorithm — the paper's full ten-program workload
/// table, in its order.
pub fn all() -> &'static [AlgoSpec] {
    &REGISTRY
}

/// Looks an algorithm up by name or alias.
pub fn find(name: &str) -> Option<&'static AlgoSpec> {
    REGISTRY.iter().find(|spec| spec.matches(name))
}

/// Resolves `name` and runs it under `cfg`, returning every failure —
/// including an unknown name — as a [`RunError`]. One malformed request
/// cannot panic past this function; it is the registry entry point the
/// serve loop and the CLI call for externally-supplied input.
pub fn run_checked(
    name: &str,
    cfg: &RunConfig<'_, NullProbe>,
    g: &CsrGraph,
) -> Result<AlgoRun, RunError> {
    find(name)
        .ok_or_else(|| RunError::UnknownAlgo(name.to_string()))?
        .try_run(cfg, g)
}

/// The same table monomorphized over [`CountingProbe`], for drivers that
/// want Table-1 event counts from the run (`ppgraph run --metrics`).
pub fn all_counting() -> &'static [AlgoSpec<CountingProbe>] {
    &COUNTING_REGISTRY
}

/// [`find`] against the [`CountingProbe`] table.
pub fn find_counting(name: &str) -> Option<&'static AlgoSpec<CountingProbe>> {
    COUNTING_REGISTRY.iter().find(|spec| spec.matches(name))
}

/// Stamps the ten-algorithm table for one probe type. One source list,
/// instantiated per probe type below — adding an algorithm here lands in
/// every monomorphization at once.
macro_rules! registry_table {
    ($P:ty) => {
        [
            AlgoSpec {
                name: "bfs",
                aliases: &["msbfs"],
                description: "breadth-first search from --source, batched over --sources (§3.3)",
                needs_weights: false,
                rooted: true,
                batched: true,
                run: run_bfs::<$P>,
            },
            AlgoSpec {
                name: "pagerank",
                aliases: &["pr"],
                description: "PageRank power iterations (§3.1)",
                needs_weights: false,
                rooted: false,
                batched: false,
                run: run_pagerank::<$P>,
            },
            AlgoSpec {
                name: "sssp",
                aliases: &["delta-stepping"],
                description: "Δ-stepping shortest paths from --source (§3.4)",
                needs_weights: true,
                rooted: true,
                batched: false,
                run: run_sssp::<$P>,
            },
            AlgoSpec {
                name: "cc",
                aliases: &["components"],
                description: "connected components by label-min propagation",
                needs_weights: false,
                rooted: false,
                batched: false,
                run: run_cc::<$P>,
            },
            AlgoSpec {
                name: "kcore",
                aliases: &["k-core"],
                description: "k-core decomposition by iterative peeling",
                needs_weights: false,
                rooted: false,
                batched: false,
                run: run_kcore::<$P>,
            },
            AlgoSpec {
                name: "labelprop",
                aliases: &["lp"],
                description: "synchronous community label propagation",
                needs_weights: false,
                rooted: false,
                batched: false,
                run: run_labelprop::<$P>,
            },
            AlgoSpec {
                name: "coloring",
                aliases: &["bgc"],
                description: "Boman-style speculative graph coloring (§5)",
                needs_weights: false,
                rooted: false,
                batched: false,
                run: run_coloring::<$P>,
            },
            AlgoSpec {
                name: "tc",
                aliases: &["triangles"],
                description: "triangle counting by adjacency intersection (§3.2)",
                needs_weights: false,
                rooted: false,
                batched: false,
                run: run_tc::<$P>,
            },
            AlgoSpec {
                name: "mst",
                aliases: &["boruvka"],
                description: "Boruvka minimum spanning forest (§3.7)",
                needs_weights: true,
                rooted: false,
                batched: false,
                run: run_mst::<$P>,
            },
            AlgoSpec {
                name: "bc",
                aliases: &["betweenness"],
                description: "Brandes betweenness centrality (§3.5)",
                needs_weights: false,
                rooted: false,
                batched: false,
                run: run_bc::<$P>,
            },
        ]
    };
}

static REGISTRY: [AlgoSpec; 10] = registry_table!(NullProbe);
static COUNTING_REGISTRY: [AlgoSpec<CountingProbe>; 10] = registry_table!(CountingProbe);

fn distinct<T: Ord + Copy>(values: &[T]) -> usize {
    let mut sorted: Vec<T> = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

fn run_bfs<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    if !cfg.sources.is_empty() {
        return run_bfs_batched(cfg, g);
    }
    let run = cfg.runner().run(g, BfsProgram::new(g, cfg.source));
    let (_, level) = run.output;
    let (reached, depth) = level_digest(&level);
    AlgoRun {
        report: run.report,
        summary: vec![
            ("reached", reached.to_string()),
            ("depth", depth.to_string()),
        ],
    }
}

/// `(reached, depth)` of one BFS level vector — the single-source summary
/// digest, shared by the single and the batched path so a batch lane's
/// digest is bit-equal to its single-source run.
fn level_digest(level: &[u32]) -> (usize, u32) {
    let reached = level.iter().filter(|&&l| l != u32::MAX).count();
    let depth = level
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    (reached, depth)
}

/// One bit-parallel MS-BFS over `cfg.sources`. The digest is the
/// concatenation of the per-source digests, in lane (deduplicated,
/// first-occurrence) order, plus the lane list itself.
fn run_bfs_batched<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let batch = SourceBatch::new(g, &cfg.sources);
    let lane_sources: Vec<String> = batch.sources().iter().map(u32::to_string).collect();
    let run = cfg.runner().run(g, MsBfsProgram::new(g, batch));
    let digests: Vec<(usize, u32)> = run.output.iter().map(|l| level_digest(l)).collect();
    let join =
        |f: &dyn Fn(&(usize, u32)) -> String| digests.iter().map(f).collect::<Vec<_>>().join(",");
    AlgoRun {
        report: run.report,
        summary: vec![
            ("sources", lane_sources.join(",")),
            ("reached", join(&|d| d.0.to_string())),
            ("depth", join(&|d| d.1.to_string())),
        ],
    }
}

/// Runs one batched MS-BFS over `cfg.sources` and slices a
/// single-source-shaped [`AlgoRun`] per *configured* source (input order;
/// repeated sources share a lane): each slice's summary is bit-equal to
/// the corresponding single-source `bfs` run's, and each carries the
/// shared batched report. This is the entry the `pp-serve` query
/// coalescer uses to answer N queued queries with one traversal.
pub fn run_bfs_sliced(
    cfg: &RunConfig<'_, NullProbe>,
    g: &CsrGraph,
) -> Result<Vec<AlgoRun>, RunError> {
    let spec = find("bfs").expect("bfs is registered");
    if cfg.sources.is_empty() {
        return Err(RunError::InvalidParam {
            param: "sources",
            reason: "a sliced batch needs at least one source",
        });
    }
    spec.validate(cfg, g)?;
    let batch = SourceBatch::new(g, &cfg.sources);
    let run = cfg.runner().run(g, MsBfsProgram::new(g, batch.clone()));
    let digests: Vec<(usize, u32)> = run.output.iter().map(|l| level_digest(l)).collect();
    Ok(cfg
        .sources
        .iter()
        .map(|&s| {
            let lane = batch
                .sources()
                .iter()
                .position(|&x| x == s)
                .expect("every configured source has a lane");
            AlgoRun {
                report: run.report.clone(),
                summary: vec![
                    ("reached", digests[lane].0.to_string()),
                    ("depth", digests[lane].1.to_string()),
                ],
            }
        })
        .collect())
}

fn run_pagerank<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let run = cfg
        .runner()
        .run(g, PageRankProgram::new(g, &PrOptions::default()));
    let pr = run.output;
    let sum: f64 = pr.iter().sum();
    let top = pr
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(v, _)| v)
        .unwrap_or(0);
    AlgoRun {
        report: run.report,
        summary: vec![
            ("rank_sum", format!("{sum:.6}")),
            ("top_vertex", top.to_string()),
        ],
    }
}

fn run_sssp<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let run = cfg
        .runner()
        .run(g, SsspProgram::new(g, cfg.source, &SsspOptions::default()));
    let (dist, buckets) = run.output;
    let reached = dist.iter().filter(|&&d| d != u64::MAX).count();
    let ecc = dist.iter().filter(|&&d| d != u64::MAX).max().copied();
    AlgoRun {
        report: run.report,
        summary: vec![
            ("reached", reached.to_string()),
            ("max_dist", ecc.unwrap_or(0).to_string()),
            ("epochs", buckets.len().to_string()),
        ],
    }
}

fn run_cc<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let run = cfg.runner().run(g, CcProgram::new(g));
    AlgoRun {
        summary: vec![("components", distinct(&run.output).to_string())],
        report: run.report,
    }
}

fn run_kcore<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let run = cfg.runner().run(g, KCoreProgram::new(g));
    let degeneracy = run.output.iter().max().copied().unwrap_or(0);
    AlgoRun {
        report: run.report,
        summary: vec![("degeneracy", degeneracy.to_string())],
    }
}

fn run_labelprop<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let run = cfg.runner().run(g, LabelPropProgram::new(g, cfg.lp_iters));
    let (labels, iterations, converged) = run.output;
    AlgoRun {
        report: run.report,
        summary: vec![
            ("communities", distinct(&labels).to_string()),
            ("iterations", iterations.to_string()),
            ("converged", converged.to_string()),
        ],
    }
}

fn run_coloring<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let run = cfg.runner().run(g, ColoringProgram::new(g));
    AlgoRun {
        summary: vec![("colors", distinct(&run.output).to_string())],
        report: run.report,
    }
}

fn run_tc<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let run = cfg.runner().run(g, TcProgram::new(g));
    // Per-corner counts: each triangle is counted once at each of its
    // three corners.
    let total: u64 = run.output.iter().sum::<u64>() / 3;
    AlgoRun {
        report: run.report,
        summary: vec![("triangles", total.to_string())],
    }
}

fn run_mst<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let run = cfg.runner().run(g, MstProgram::new(g));
    let (edges, total_weight) = run.output;
    AlgoRun {
        report: run.report,
        summary: vec![
            ("tree_edges", edges.len().to_string()),
            ("total_weight", total_weight.to_string()),
        ],
    }
}

fn run_bc<P: ShardProbe>(cfg: &RunConfig<'_, P>, g: &CsrGraph) -> AlgoRun {
    let opts = BcOptions {
        max_sources: cfg.bc_sources,
    };
    let run = cfg.runner().run(g, BcProgram::new(g, &opts));
    let (top, score) = run
        .output
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(v, &s)| (v, s))
        .unwrap_or((0, 0.0));
    AlgoRun {
        report: run.report,
        summary: vec![
            ("top_vertex", top.to_string()),
            ("top_score", format!("{score:.3}")),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, stats};

    #[test]
    fn registry_lists_ten_uniquely_named_algorithms() {
        assert_eq!(all().len(), 10);
        let mut names: Vec<&str> = Vec::new();
        for spec in all() {
            names.push(spec.name);
            names.extend(spec.aliases);
        }
        let count = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), count, "names and aliases collide");
    }

    #[test]
    fn find_resolves_names_and_aliases_case_insensitively() {
        for spec in all() {
            assert_eq!(find(spec.name).unwrap().name, spec.name);
            assert_eq!(find(&spec.name.to_uppercase()).unwrap().name, spec.name);
            for alias in spec.aliases {
                assert_eq!(find(alias).unwrap().name, spec.name);
            }
        }
        assert!(find("no-such-algo").is_none());
    }

    #[test]
    fn every_algorithm_runs_by_name_with_a_sane_summary() {
        let g = gen::rmat(7, 5, 3);
        let gw = gen::with_random_weights(&g, 1, 40, 9);
        let engine = Engine::new(2);
        let probes = ProbeShards::new(engine.threads());
        let cfg = RunConfig::new(&engine, &probes);
        for spec in all() {
            let run = spec.run(&cfg, if spec.needs_weights { &gw } else { &g });
            assert!(
                !run.summary.is_empty() && run.report.num_rounds() > 0,
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn summaries_match_reference_statistics() {
        let g = gen::erdos_renyi(120, 90, 5); // several components
        let engine = Engine::new(2);
        let probes = ProbeShards::new(engine.threads());
        let cfg = RunConfig::new(&engine, &probes);
        let cc = find("cc").unwrap().run(&cfg, &g);
        assert_eq!(
            cc.summary[0],
            ("components", stats::num_components(&g).to_string())
        );
        let bfs = find("bfs").unwrap().run(&cfg, &g);
        let (level, _, _) = stats::bfs_levels(&g, 0);
        let reached = level.iter().filter(|&&l| l != u32::MAX).count();
        assert_eq!(bfs.summary[0], ("reached", reached.to_string()));
        let tc = find("tc").unwrap().run(&cfg, &g);
        let expected: u64 = pp_core::triangles::triangle_counts_seq(&g)
            .iter()
            .sum::<u64>()
            / 3;
        assert_eq!(tc.summary[0], ("triangles", expected.to_string()));
    }

    #[test]
    fn modes_and_policies_flow_through_the_config() {
        use pp_core::Direction;
        let g = gen::rmat(7, 4, 1);
        let engine = Engine::new(2);
        let probes = ProbeShards::new(engine.threads());
        for (_, policy) in DirectionPolicy::sweep() {
            for (_, mode) in ExecutionMode::sweep() {
                let cfg = RunConfig {
                    policy,
                    mode,
                    ..RunConfig::new(&engine, &probes)
                };
                let run = find("cc").unwrap().run(&cfg, &g);
                if let DirectionPolicy::Fixed(Direction::Push) = policy {
                    assert_eq!(run.report.pull_rounds(), 0);
                }
            }
        }
    }

    #[test]
    fn counting_registry_mirrors_the_null_one_and_counts_events() {
        assert_eq!(all().len(), all_counting().len());
        for (a, b) in all().iter().zip(all_counting()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.aliases, b.aliases);
            assert_eq!(a.needs_weights, b.needs_weights);
        }
        let g = gen::rmat(7, 5, 3);
        let engine = Engine::new(2);
        let probes: ProbeShards<pp_telemetry::CountingProbe> = ProbeShards::new(engine.threads());
        let cfg = RunConfig::new(&engine, &probes);
        let run = find_counting("bfs").unwrap().run(&cfg, &g);
        assert!(run.report.num_rounds() > 0);
        assert!(probes.merged().communication() > 0, "events were counted");
    }

    #[test]
    fn collect_knob_fills_timing_without_changing_round_structure() {
        let g = gen::rmat(7, 5, 3);
        let engine = Engine::new(2);
        let probes = ProbeShards::new(engine.threads());
        let off = RunConfig::new(&engine, &probes);
        let timed = RunConfig {
            collect: MetricsLevel::Trace,
            ..RunConfig::new(&engine, &probes)
        };
        let a = find("cc").unwrap().run(&off, &g);
        let b = find("cc").unwrap().run(&timed, &g);
        assert_eq!(a.report.elapsed_ns, 0);
        assert!(a.report.worker_laps.is_empty());
        assert!(a.report.rounds.iter().all(|r| r.decision.is_none()));
        assert!(b.report.elapsed_ns > 0);
        assert_eq!(b.report.worker_laps.len(), engine.threads());
        assert_eq!(b.report.num_rounds(), a.report.num_rounds());
        assert_eq!(b.report.round_worker_busy.len(), b.report.num_rounds());
        assert!(b.report.rounds.iter().all(|r| r.decision.is_some()));
        assert!(b.report.elapsed_ns >= b.report.round_duration_ns());
    }

    #[test]
    #[should_panic(expected = "requires edge weights")]
    fn weighted_algorithms_reject_unweighted_graphs() {
        let g = gen::path(10);
        let engine = Engine::new(1);
        let probes = ProbeShards::new(engine.threads());
        let cfg = RunConfig::new(&engine, &probes);
        find("mst").unwrap().run(&cfg, &g);
    }

    #[test]
    fn bad_input_returns_structured_errors_instead_of_panicking() {
        let g = gen::path(10);
        let engine = Engine::new(1);
        let probes = ProbeShards::new(engine.threads());
        let cfg = RunConfig::new(&engine, &probes);

        let e = run_checked("no-such-algo", &cfg, &g).unwrap_err();
        assert_eq!(e, RunError::UnknownAlgo("no-such-algo".to_string()));
        assert_eq!(e.kind(), "unknown_algo");

        // Out-of-range source on every rooted algorithm (weighted graph,
        // so SSSP gets past the weights check to the range check).
        let wg = gen::with_random_weights(&g, 1, 4, 1);
        let far = RunConfig {
            source: 10,
            ..RunConfig::new(&engine, &probes)
        };
        for name in ["bfs", "sssp"] {
            let spec = find(name).unwrap();
            assert!(spec.rooted, "{name}");
            let e = run_checked(name, &far, &wg).unwrap_err();
            assert_eq!(e, RunError::SourceOutOfRange { source: 10, n: 10 });
            assert_eq!(e.kind(), "source_out_of_range");
            assert!(e.to_string().contains("out of range"));
        }
        // ... including on an empty graph, where no source is valid.
        let empty = gen::erdos_renyi(0, 0, 1);
        assert_eq!(
            run_checked("bfs", &cfg, &empty).unwrap_err(),
            RunError::SourceOutOfRange { source: 0, n: 0 }
        );
        // Unrooted algorithms ignore the source entirely.
        assert!(run_checked("cc", &far, &g).is_ok());

        let e = run_checked("mst", &cfg, &g).unwrap_err();
        assert_eq!(e, RunError::NeedsWeights { algo: "mst" });
        assert_eq!(e.kind(), "needs_weights");

        let zero_bc = RunConfig {
            bc_sources: Some(0),
            ..RunConfig::new(&engine, &probes)
        };
        let e = run_checked("bc", &zero_bc, &g).unwrap_err();
        assert_eq!(e.kind(), "bad_param");
        assert!(e.to_string().contains("bc_sources"));

        let zero_lp = RunConfig {
            lp_iters: 0,
            ..RunConfig::new(&engine, &probes)
        };
        let e = run_checked("labelprop", &zero_lp, &g).unwrap_err();
        assert_eq!(e.kind(), "bad_param");
        assert!(e.to_string().contains("lp_iters"));

        // Errors resolve through aliases the same as canonical names.
        assert_eq!(
            run_checked("boruvka", &cfg, &g).unwrap_err(),
            RunError::NeedsWeights { algo: "mst" }
        );

        // A config that validates runs — and matches the panicking path.
        let ok = run_checked("bfs", &cfg, &g).unwrap();
        assert!(!ok.summary.is_empty());
    }

    #[test]
    fn batched_sources_validate_dedupe_and_match_single_source_runs() {
        let g = gen::rmat(7, 5, 3);
        let engine = Engine::new(2);
        let probes = ProbeShards::new(engine.threads());

        // The msbfs alias resolves to bfs, which is the only batched spec.
        assert_eq!(find("msbfs").unwrap().name, "bfs");
        assert!(find("bfs").unwrap().batched);
        assert!(all().iter().filter(|s| s.batched).count() == 1);

        // More than 64 *distinct* sources is a structured bad_param...
        let too_many = RunConfig {
            sources: (0..65).collect(),
            ..RunConfig::new(&engine, &probes)
        };
        let e = run_checked("bfs", &too_many, &g).unwrap_err();
        assert_eq!(e.kind(), "bad_param");
        assert!(e.to_string().contains("sources"));

        // ...but 65 entries with ≤ 64 distinct values validate (duplicates
        // fold onto one lane).
        let dup_heavy = RunConfig {
            sources: (0..65).map(|i| i % 64).collect(),
            ..RunConfig::new(&engine, &probes)
        };
        assert!(run_checked("bfs", &dup_heavy, &g).is_ok());

        // Every batch member is range-checked individually.
        let far = RunConfig {
            sources: vec![0, 9999],
            ..RunConfig::new(&engine, &probes)
        };
        let e = run_checked("msbfs", &far, &g).unwrap_err();
        assert_eq!(
            e,
            RunError::SourceOutOfRange {
                source: 9999,
                n: g.num_vertices()
            }
        );

        // Non-batched algorithms reject a batch up front (sssp on a
        // weighted graph, so the check under test is the one that fires).
        let gw = gen::with_random_weights(&g, 1, 9, 4);
        for name in ["cc", "sssp", "pagerank"] {
            let cfg = RunConfig {
                sources: vec![0, 1],
                ..RunConfig::new(&engine, &probes)
            };
            let e = find(name).unwrap().validate(&cfg, &gw).unwrap_err();
            assert_eq!(e.kind(), "bad_param", "{name}");
        }

        // A batched run dedupes repeated sources and its digest is the
        // concatenation of per-source digests, bit-equal to single runs.
        let batched = RunConfig {
            sources: vec![3, 17, 3, 5],
            ..RunConfig::new(&engine, &probes)
        };
        let run = run_checked("bfs", &batched, &g).unwrap();
        assert_eq!(run.summary[0], ("sources", "3,17,5".to_string()));
        let singles: Vec<AlgoRun> = [3u32, 17, 5]
            .iter()
            .map(|&s| {
                let cfg = RunConfig {
                    source: s,
                    ..RunConfig::new(&engine, &probes)
                };
                run_checked("bfs", &cfg, &g).unwrap()
            })
            .collect();
        let joined = |k: usize| {
            singles
                .iter()
                .map(|r| r.summary[k].1.clone())
                .collect::<Vec<_>>()
                .join(",")
        };
        assert_eq!(run.summary[1], ("reached", joined(0)));
        assert_eq!(run.summary[2], ("depth", joined(1)));
        assert!(run.report.sources.len() == 3, "per-lane report axis");

        // The serve-facing slicer returns one single-source-shaped run per
        // *configured* source, duplicates included, each digest-equal to
        // its direct single-source run.
        let slices = run_bfs_sliced(&batched, &g).unwrap();
        assert_eq!(slices.len(), 4);
        for (i, &s) in [3usize, 17, 3, 5].iter().enumerate() {
            let single = &singles[[3, 17, 5].iter().position(|&x| x == s).unwrap()];
            assert_eq!(slices[i].summary, single.summary, "source {s}");
        }
    }

    #[test]
    fn validate_mirrors_try_run_on_the_counting_table() {
        let g = gen::path(6);
        let engine = Engine::new(1);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let bad = RunConfig {
            source: 99,
            ..RunConfig::new(&engine, &probes)
        };
        let spec = find_counting("bfs").unwrap();
        assert_eq!(
            spec.validate(&bad, &g).unwrap_err(),
            RunError::SourceOutOfRange { source: 99, n: 6 }
        );
        assert!(spec.try_run(&bad, &g).is_err());
        let ok = RunConfig::new(&engine, &probes);
        assert!(spec.try_run(&ok, &g).is_ok());
    }
}
