//! The `Program` abstraction: what an algorithm *is*, separated from what a
//! *run* is (see [`crate::runner::Runner`]).
//!
//! The paper's thesis — push vs. pull is a schedule, not an algorithm —
//! becomes a type here. A [`Program`] supplies only the per-vertex state,
//! the two edge kernels ([`crate::ops::EdgeKernel::push_update`] /
//! [`crate::ops::EdgeKernel::pull_gather`], which must share one update
//! semantics), how the active set starts and reseeds, and when the fixpoint
//! is reached. Every scheduling concern — direction per round, work
//! partitioning, frontier representation, densify/sparsify decisions, probe
//! shards, telemetry — lives in the runner, so a scheduling improvement
//! lands once and every algorithm inherits it.
//!
//! A run is a sequence of *phases*, each a sequence of *rounds*:
//!
//! ```text
//! frontier = program.initial_frontier()
//! loop {
//!     while frontier not empty {          // one phase
//!         program.begin_round(...)        //   mutable pre-round hook
//!         frontier = edge_map(frontier)   //   one round, push or pull
//!     }
//!     frontier = program.next_phase()?    // reseed (bucket, peel level,
//! }                                       // iteration) or converge
//! ```
//!
//! Single-phase traversals (BFS, components, coloring) never override
//! [`Program::next_phase`]; bucketed/leveled/iterative algorithms (Δ-SSSP,
//! k-core, PageRank, label propagation) use it as their outer loop.

use pp_graph::{CsrGraph, VertexId};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::probes::{ProbeShards, ShardProbe};

/// What the runner tells a program about the round it is about to execute.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    /// Global round index (across phases).
    pub round: u32,
    /// Current phase index.
    pub phase: u32,
    /// Direction the policy chose for this round.
    pub dir: pp_core::Direction,
}

/// A vertex program: per-vertex state plus the hooks the shared round loop
/// needs. The edge-update half is the [`EdgeKernel`] supertrait; both its
/// kernels must encode the same logical update so that any interleaving of
/// push and pull rounds converges to the same fixpoint.
pub trait Program<P: ShardProbe>: EdgeKernel<P> + Sized {
    /// What the run produces (extracted by [`Program::finish`]).
    type Output;

    /// The frontier the first round consumes. May mutate `self` (e.g. seed
    /// the root's state).
    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier;

    /// Pre-round hook, called once before each `edge_map` with the frontier
    /// that round will consume. This is where per-round scalar state moves
    /// (BFS's current level) and where frontier-wide vertex work happens
    /// (k-core peels the frontier here). Default: nothing.
    fn begin_round(
        &mut self,
        ctx: RoundCtx,
        g: &CsrGraph,
        frontier: &mut Frontier,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) {
        let _ = (ctx, g, frontier, engine, probes);
    }

    /// Called when a phase's frontier has drained: return the next phase's
    /// frontier, or `None` when the program has converged. Returning an
    /// empty frontier is allowed (the runner simply asks again), but the
    /// sequence must reach `None` for the run to terminate. Default:
    /// single-phase — converge as soon as the frontier drains.
    fn next_phase(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        let _ = (g, engine, probes);
        None
    }

    /// Consumes the program and extracts its result.
    fn finish(self, g: &CsrGraph) -> Self::Output;
}

/// Convenience: the frontier of every vertex `v` with `pred(v)` true — the
/// common shape of phase reseeds (bucket members, next peel level).
pub fn frontier_where(g: &CsrGraph, pred: impl Fn(VertexId) -> bool) -> Frontier {
    let members: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| pred(v))
        .collect();
    Frontier::from_vertices(g, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;

    #[test]
    fn frontier_where_selects_matching_vertices() {
        let g = gen::path(10);
        let mut f = frontier_where(&g, |v| v % 3 == 0);
        assert_eq!(f.vertices(), &[0, 3, 6, 9]);
        assert!(frontier_where(&g, |_| false).is_empty());
    }
}
