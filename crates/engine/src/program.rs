//! The `Program` abstraction: what an algorithm *is*, separated from what a
//! *run* is (see [`crate::runner::Runner`]).
//!
//! The paper's thesis — push vs. pull is a schedule, not an algorithm —
//! becomes a type here. A [`Program`] supplies only the per-vertex state,
//! the two edge kernels ([`crate::ops::EdgeKernel::push_update`] /
//! [`crate::ops::EdgeKernel::pull_gather`], which must share one update
//! semantics), how the active set starts and reseeds, and when the fixpoint
//! is reached. Every scheduling concern — direction per round, work
//! partitioning, frontier representation, densify/sparsify decisions, probe
//! shards, telemetry — lives in the runner, so a scheduling improvement
//! lands once and every algorithm inherits it.
//!
//! A run is a sequence of *phases*, each a sequence of *rounds*:
//!
//! ```text
//! frontier = program.initial_frontier()
//! loop {
//!     while frontier not empty {          // one phase
//!         program.begin_round(...)        //   mutable pre-round hook
//!         frontier = edge_map(frontier)   //   one round, push or pull
//!     }                                   //   (or a vertex step — below)
//!     frontier = program.next_phase()?    // reseed (bucket, peel level,
//! }                                       // iteration) or converge
//! ```
//!
//! Single-phase traversals (BFS, components, coloring) never override
//! [`Program::next_phase`]; bucketed/leveled/iterative algorithms (Δ-SSSP,
//! k-core, PageRank, label propagation) use it as their outer loop.
//!
//! ## Per-phase kernel selection
//!
//! Multi-kernel algorithms run *different* work in different phases:
//! Boruvka MST alternates an edge sweep (find-minimum) with per-vertex
//! steps (merge-tree building, relabeling), and Brandes BC alternates
//! forward σ-counting sweeps with backward dependency accumulation. Two
//! mechanisms cover this:
//!
//! * **Kernel state machines** — the program's `push_update`/`pull_gather`
//!   dispatch on internal state advanced by [`Program::next_phase`] /
//!   [`Program::begin_round`] (BC's forward/backward modes). No runner
//!   support needed: the kernels are `&self`, the state moves only between
//!   rounds.
//! * **[`Program::phase_kernel`]** — a phase can opt out of edge traversal
//!   entirely by declaring itself a [`PhaseKernel::VertexStep`]: the runner
//!   still opens the round (`begin_round`, where the program does its
//!   frontier-wide vertex work, e.g. via [`Engine::vertex_map`]) but skips
//!   `edge_map`, so the phase drains after exactly one round. MST's BMT and
//!   Merge phases are vertex steps; they appear in the
//!   [`crate::report::RunReport`] like any other round, which is what lets
//!   `RunReport::phase_rounds` expose the paper's FM/BMT/M phase structure.

use pp_graph::{CsrGraph, VertexId};

use crate::frontier::Frontier;
use crate::ops::{EdgeKernel, Engine};
use crate::probes::{ProbeShards, ShardProbe};

/// What the runner tells a program about the round it is about to execute.
#[derive(Clone, Copy, Debug)]
pub struct RoundCtx {
    /// Global round index (across phases).
    pub round: u32,
    /// Current phase index.
    pub phase: u32,
    /// Direction the policy chose for this round. For a
    /// [`PhaseKernel::VertexStep`] round this is the policy's current
    /// direction ([`crate::policy::DirectionPolicy::current`]) — recorded
    /// for the report, but no edge kernel runs in it.
    pub dir: pp_core::Direction,
}

/// Which kernel family a phase's rounds run — the per-phase selection that
/// widens the frontier-shaped contract to multi-kernel algorithms (see the
/// module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PhaseKernel {
    /// Rounds traverse the frontier's incident edges through
    /// [`crate::ops::EdgeKernel::push_update`] /
    /// [`crate::ops::EdgeKernel::pull_gather`] — the default, and the only
    /// kind that existed before per-phase selection.
    #[default]
    EdgeMap,
    /// The round's work is frontier-wide *vertex* work, done by the program
    /// inside [`Program::begin_round`] (typically via
    /// [`Engine::vertex_map`]). The runner skips edge traversal — no
    /// direction policy observation, no atomics, no exchange — and hands
    /// the phase an empty next frontier, so a vertex-step phase drains
    /// after exactly one round (reseed through [`Program::next_phase`]).
    VertexStep,
}

/// A vertex program: per-vertex state plus the hooks the shared round loop
/// needs. The edge-update half is the [`EdgeKernel`] supertrait; both its
/// kernels must encode the same logical update so that any interleaving of
/// push and pull rounds converges to the same fixpoint.
pub trait Program<P: ShardProbe>: EdgeKernel<P> + Sized {
    /// What the run produces (extracted by [`Program::finish`]).
    type Output;

    /// The frontier the first round consumes. May mutate `self` (e.g. seed
    /// the root's state).
    fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier;

    /// The kernel family the current phase's rounds run. Called by the
    /// runner before each round (after any [`Program::next_phase`] state
    /// advance, so a kernel state machine is already positioned). Default:
    /// every phase traverses edges.
    fn phase_kernel(&self, phase: u32) -> PhaseKernel {
        let _ = phase;
        PhaseKernel::EdgeMap
    }

    /// Pre-round hook, called once before each `edge_map` with the frontier
    /// that round will consume. This is where per-round scalar state moves
    /// (BFS's current level) and where frontier-wide vertex work happens
    /// (k-core peels the frontier here). Default: nothing.
    fn begin_round(
        &mut self,
        ctx: RoundCtx,
        g: &CsrGraph,
        frontier: &mut Frontier,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) {
        let _ = (ctx, g, frontier, engine, probes);
    }

    /// Called when a phase's frontier has drained: return the next phase's
    /// frontier, or `None` when the program has converged. Returning an
    /// empty frontier is allowed (the runner simply asks again, without
    /// advancing the phase index — report phase indices stay contiguous),
    /// but the sequence must reach `None` for the run to terminate.
    /// Default: single-phase — converge as soon as the frontier drains.
    fn next_phase(
        &mut self,
        g: &CsrGraph,
        engine: &Engine,
        probes: &ProbeShards<P>,
    ) -> Option<Frontier> {
        let _ = (g, engine, probes);
        None
    }

    /// How many batch lanes were active in the round just opened by
    /// [`Program::begin_round`] — the per-round lane axis of a batched
    /// multi-source run (see [`crate::algo::msbfs`]). The runner queries
    /// this after each `begin_round` and records it as
    /// [`crate::report::RoundStat::lanes_active`]. Default: `None` —
    /// single-source programs have no lane axis and report 0.
    fn lanes_active(&self) -> Option<u32> {
        None
    }

    /// Per-source statistics of a batched run, queried by the runner once
    /// the program has converged (just before [`Program::finish`], which
    /// consumes `self`) and recorded as
    /// [`crate::report::RunReport::sources`]. Default: empty — the
    /// single-source report shape is unchanged.
    fn source_stats(&self) -> Vec<crate::report::SourceStat> {
        Vec::new()
    }

    /// Consumes the program and extracts its result.
    fn finish(self, g: &CsrGraph) -> Self::Output;
}

/// Convenience: the frontier of every vertex `v` with `pred(v)` true — the
/// common shape of phase reseeds (bucket members, next peel level).
pub fn frontier_where(g: &CsrGraph, pred: impl Fn(VertexId) -> bool) -> Frontier {
    let members: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| pred(v))
        .collect();
    Frontier::from_vertices(g, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;

    #[test]
    fn frontier_where_selects_matching_vertices() {
        let g = gen::path(10);
        let mut f = frontier_where(&g, |v| v % 3 == 0);
        assert_eq!(f.vertices(), &[0, 3, 6, 9]);
        assert!(frontier_where(&g, |_| false).is_empty());
    }
}
