//! The `Runner`: what a *run* is — engine, direction policy, probe shards,
//! and the one shared round loop every [`Program`] executes on.
//!
//! Before this abstraction each algorithm hand-rolled its own loop
//! (direction handling, convergence check, telemetry plumbing); now the
//! loop exists exactly once, and a policy/scheduling improvement reaches
//! all seven algorithms at the same commit.

use pp_graph::CsrGraph;

use crate::ops::Engine;
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{Program, RoundCtx};
use crate::report::{RoundStat, RunReport};

/// A completed run: the program's output plus the unified round telemetry.
#[derive(Clone, Debug)]
pub struct Run<T> {
    /// What the program computed.
    pub output: T,
    /// Per-round direction/frontier/edge statistics.
    pub report: RunReport,
}

/// Builder for program runs: borrows an [`Engine`] and a probe-shard set,
/// carries a [`DirectionPolicy`], and drives any [`Program`] to its
/// fixpoint. Reusable: `run` takes `&self` and clones the policy, so one
/// runner can execute many programs (or the same program repeatedly).
pub struct Runner<'a, P: ShardProbe> {
    engine: &'a Engine,
    probes: &'a ProbeShards<P>,
    policy: DirectionPolicy,
}

impl<'a, P: ShardProbe> Runner<'a, P> {
    /// A runner over `engine` with per-worker `probes`, defaulting to the
    /// adaptive direction policy.
    pub fn new(engine: &'a Engine, probes: &'a ProbeShards<P>) -> Self {
        Self {
            engine,
            probes,
            policy: DirectionPolicy::adaptive(),
        }
    }

    /// Selects the direction policy for subsequent runs.
    pub fn policy(mut self, policy: DirectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The engine this runner schedules onto.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Drives `program` to convergence and returns its output with the
    /// per-round report.
    ///
    /// Each iteration: ask the policy for a direction, let the program see
    /// the round ([`Program::begin_round`]), `edge_map` the frontier. When
    /// a phase drains, [`Program::next_phase`] reseeds or ends the run.
    pub fn run<Pg: Program<P>>(&self, g: &CsrGraph, mut program: Pg) -> Run<Pg::Output> {
        let mut policy = self.policy;
        let mut frontier = program.initial_frontier(g);
        let mut report = RunReport::default();
        let mut round = 0u32;
        let mut phase = 0u32;
        loop {
            while !frontier.is_empty() {
                let dir = policy.next(&frontier, g);
                report.rounds.push(RoundStat {
                    round,
                    phase,
                    dir,
                    frontier: frontier.len(),
                    frontier_edges: frontier.edge_count(g),
                });
                let ctx = RoundCtx { round, phase, dir };
                program.begin_round(ctx, g, &mut frontier, self.engine, self.probes);
                frontier = self
                    .engine
                    .edge_map(g, &mut frontier, dir, &program, self.probes);
                round += 1;
            }
            match program.next_phase(g, self.engine, self.probes) {
                Some(next) => {
                    frontier = next;
                    phase += 1;
                }
                None => break,
            }
        }
        report.phases = phase + 1;
        Run {
            output: program.finish(g),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::Frontier;
    use crate::ops::EdgeKernel;
    use crate::program::frontier_where;
    use pp_core::Direction;
    use pp_graph::{VertexId, Weight};
    use pp_telemetry::{NullProbe, Probe};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Two-phase reachability: phase 0 marks the component of vertex 0,
    /// phase 1 the component of the smallest unmarked vertex (if any).
    struct TwoSweep {
        mark: Vec<AtomicU32>,
        sweeps: u32,
    }

    impl<P: Probe> EdgeKernel<P> for TwoSweep {
        fn push_update(&self, _u: VertexId, v: VertexId, _w: Weight, _probe: &P) -> bool {
            self.mark[v as usize]
                .compare_exchange(0, self.sweeps, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        }

        fn pull_gather(&self, v: VertexId, _u: VertexId, _w: Weight, _probe: &P) -> bool {
            // Own-cell write; candidate gate keeps this exactly-once.
            self.mark[v as usize].store(self.sweeps, Ordering::Relaxed);
            true
        }

        fn pull_candidate(&self, v: VertexId, _probe: &P) -> bool {
            self.mark[v as usize].load(Ordering::Relaxed) == 0
        }

        fn pull_saturates(&self) -> bool {
            true
        }
    }

    impl<P: ShardProbe> Program<P> for TwoSweep {
        type Output = Vec<u32>;

        fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
            self.sweeps = 1;
            self.mark[0].store(1, Ordering::Relaxed);
            Frontier::single(g, 0)
        }

        fn next_phase(
            &mut self,
            g: &CsrGraph,
            _engine: &Engine,
            _probes: &ProbeShards<P>,
        ) -> Option<Frontier> {
            if self.sweeps >= 2 {
                return None;
            }
            let seed =
                (0..g.num_vertices()).find(|&v| self.mark[v].load(Ordering::Relaxed) == 0)?;
            self.sweeps = 2;
            self.mark[seed].store(2, Ordering::Relaxed);
            Some(frontier_where(g, |v| v as usize == seed))
        }

        fn finish(self, _g: &CsrGraph) -> Vec<u32> {
            self.mark.into_iter().map(AtomicU32::into_inner).collect()
        }
    }

    fn two_component_graph() -> CsrGraph {
        // Component A: cycle 0..6; component B: path 6..12.
        let mut b = pp_graph::GraphBuilder::undirected(12);
        for i in 0..6u32 {
            b.add_edge(i, (i + 1) % 6);
        }
        for i in 6..11u32 {
            b.add_edge(i, i + 1);
        }
        b.build()
    }

    fn run_two_sweep(policy: DirectionPolicy, threads: usize) -> Run<Vec<u32>> {
        let g = two_component_graph();
        let engine = Engine::new(threads);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let program = TwoSweep {
            mark: (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect(),
            sweeps: 0,
        };
        Runner::new(&engine, &probes)
            .policy(policy)
            .run(&g, program)
    }

    #[test]
    fn phases_reseed_and_finish_extracts_state() {
        for threads in [1, 4] {
            for policy in [
                DirectionPolicy::Fixed(Direction::Push),
                DirectionPolicy::Fixed(Direction::Pull),
                DirectionPolicy::adaptive(),
            ] {
                let r = run_two_sweep(policy, threads);
                assert!(r.output[..6].iter().all(|&m| m == 1), "{policy:?}");
                assert!(r.output[6..].iter().all(|&m| m == 2), "{policy:?}");
                assert_eq!(r.report.phases, 2);
                assert!(r.report.phase_rounds(0).count() >= 3);
                assert!(r.report.phase_rounds(1).count() >= 5);
            }
        }
    }

    #[test]
    fn report_rounds_are_contiguous_and_phase_ordered() {
        let r = run_two_sweep(DirectionPolicy::Fixed(Direction::Push), 2);
        for (i, stat) in r.report.rounds.iter().enumerate() {
            assert_eq!(stat.round as usize, i);
        }
        assert!(r.report.rounds.windows(2).all(|w| w[0].phase <= w[1].phase));
        assert_eq!(r.report.num_rounds(), r.report.push_rounds());
    }
}
