//! The `Runner`: what a *run* is — engine, direction policy, probe shards,
//! and the one shared round loop every [`Program`] executes on.
//!
//! Before this abstraction each algorithm hand-rolled its own loop
//! (direction handling, convergence check, telemetry plumbing); now the
//! loop exists exactly once, and a policy/scheduling improvement reaches
//! all seven algorithms at the same commit.

use pp_core::Direction;
use pp_graph::CsrGraph;

use crate::ops::Engine;
use crate::partitioned::{ExecutionMode, PaContext};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{Program, RoundCtx};
use crate::report::{RoundStat, RunReport};

/// A completed run: the program's output plus the unified round telemetry.
#[derive(Clone, Debug)]
pub struct Run<T> {
    /// What the program computed.
    pub output: T,
    /// Per-round direction/frontier/edge statistics.
    pub report: RunReport,
}

/// Builder for program runs: borrows an [`Engine`] and a probe-shard set,
/// carries a [`DirectionPolicy`], and drives any [`Program`] to its
/// fixpoint. Reusable: `run` takes `&self` and clones the policy, so one
/// runner can execute many programs (or the same program repeatedly).
pub struct Runner<'a, P: ShardProbe> {
    engine: &'a Engine,
    probes: &'a ProbeShards<P>,
    policy: DirectionPolicy,
    mode: ExecutionMode,
}

impl<'a, P: ShardProbe> Runner<'a, P> {
    /// A runner over `engine` with per-worker `probes`, defaulting to the
    /// adaptive direction policy and atomic push execution.
    pub fn new(engine: &'a Engine, probes: &'a ProbeShards<P>) -> Self {
        Self {
            engine,
            probes,
            policy: DirectionPolicy::adaptive(),
            mode: ExecutionMode::Atomic,
        }
    }

    /// Selects the direction policy for subsequent runs.
    pub fn policy(mut self, policy: DirectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects how push rounds execute (§5):
    /// [`ExecutionMode::PartitionAware`] replaces per-edge atomics with
    /// plain local writes plus an owner-computes exchange, binding one
    /// partition part to each engine thread. Pull rounds are unaffected.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The engine this runner schedules onto.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Drives `program` to convergence and returns its output with the
    /// per-round report.
    ///
    /// Each iteration: ask the policy for a direction, let the program see
    /// the round ([`Program::begin_round`]), `edge_map` the frontier. When
    /// a phase drains, [`Program::next_phase`] reseeds or ends the run.
    pub fn run<Pg: Program<P>>(&self, g: &CsrGraph, mut program: Pg) -> Run<Pg::Output> {
        let mut policy = self.policy;
        // Partition-aware runs bind one part per engine thread and build
        // the §5 split lazily at the first push round (a run whose policy
        // never pushes skips the O(n + m) build entirely); the context —
        // split representation and exchange buffers — then persists (and
        // keeps its buffer capacity) across every push round of the run.
        let mut pa: Option<PaContext> = None;
        let mut frontier = program.initial_frontier(g);
        let mut report = RunReport::default();
        let mut round = 0u32;
        let mut phase = 0u32;
        loop {
            while !frontier.is_empty() {
                let dir = policy.next(&frontier, g);
                let (stat_frontier, stat_edges) = (frontier.len(), frontier.edge_count(g));
                let ctx = RoundCtx { round, phase, dir };
                program.begin_round(ctx, g, &mut frontier, self.engine, self.probes);
                let (next, stats) = match (self.mode, dir) {
                    (ExecutionMode::PartitionAware, Direction::Push) => {
                        let pactx =
                            pa.get_or_insert_with(|| PaContext::new(g, self.engine.threads()));
                        let (next, stats) =
                            pactx.push_round(self.engine, g, &mut frontier, &program, self.probes);
                        (next, Some(stats))
                    }
                    _ => (
                        self.engine
                            .edge_map(g, &mut frontier, dir, &program, self.probes),
                        None,
                    ),
                };
                frontier = next;
                report.rounds.push(RoundStat {
                    round,
                    phase,
                    dir,
                    frontier: stat_frontier,
                    frontier_edges: stat_edges,
                    remote_updates: stats.map_or(0, |s| s.remote_updates),
                    buffer_peak: stats.map_or(0, |s| s.buffer_peak),
                });
                round += 1;
            }
            match program.next_phase(g, self.engine, self.probes) {
                Some(next) => {
                    frontier = next;
                    phase += 1;
                }
                None => break,
            }
        }
        report.phases = phase + 1;
        Run {
            output: program.finish(g),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::Frontier;
    use crate::ops::EdgeKernel;
    use crate::program::frontier_where;
    use pp_core::Direction;
    use pp_graph::{VertexId, Weight};
    use pp_telemetry::{NullProbe, Probe};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Two-phase reachability: phase 0 marks the component of vertex 0,
    /// phase 1 the component of the smallest unmarked vertex (if any).
    struct TwoSweep {
        mark: Vec<AtomicU32>,
        sweeps: u32,
    }

    impl<P: Probe> EdgeKernel<P> for TwoSweep {
        fn push_update(&self, _u: VertexId, v: VertexId, _w: Weight, _probe: &P) -> bool {
            self.mark[v as usize]
                .compare_exchange(0, self.sweeps, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        }

        fn pull_gather(&self, v: VertexId, _u: VertexId, _w: Weight, _probe: &P) -> bool {
            // Own-cell write; candidate gate keeps this exactly-once.
            self.mark[v as usize].store(self.sweeps, Ordering::Relaxed);
            true
        }

        fn pull_candidate(&self, v: VertexId, _probe: &P) -> bool {
            self.mark[v as usize].load(Ordering::Relaxed) == 0
        }

        fn pull_saturates(&self) -> bool {
            true
        }
    }

    impl<P: ShardProbe> Program<P> for TwoSweep {
        type Output = Vec<u32>;

        fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
            self.sweeps = 1;
            self.mark[0].store(1, Ordering::Relaxed);
            Frontier::single(g, 0)
        }

        fn next_phase(
            &mut self,
            g: &CsrGraph,
            _engine: &Engine,
            _probes: &ProbeShards<P>,
        ) -> Option<Frontier> {
            if self.sweeps >= 2 {
                return None;
            }
            let seed =
                (0..g.num_vertices()).find(|&v| self.mark[v].load(Ordering::Relaxed) == 0)?;
            self.sweeps = 2;
            self.mark[seed].store(2, Ordering::Relaxed);
            Some(frontier_where(g, |v| v as usize == seed))
        }

        fn finish(self, _g: &CsrGraph) -> Vec<u32> {
            self.mark.into_iter().map(AtomicU32::into_inner).collect()
        }
    }

    fn two_component_graph() -> CsrGraph {
        // Component A: cycle 0..6; component B: path 6..12.
        let mut b = pp_graph::GraphBuilder::undirected(12);
        for i in 0..6u32 {
            b.add_edge(i, (i + 1) % 6);
        }
        for i in 6..11u32 {
            b.add_edge(i, i + 1);
        }
        b.build()
    }

    fn run_two_sweep(
        policy: DirectionPolicy,
        threads: usize,
        mode: ExecutionMode,
    ) -> Run<Vec<u32>> {
        let g = two_component_graph();
        let engine = Engine::new(threads);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let program = TwoSweep {
            mark: (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect(),
            sweeps: 0,
        };
        Runner::new(&engine, &probes)
            .policy(policy)
            .mode(mode)
            .run(&g, program)
    }

    #[test]
    fn phases_reseed_and_finish_extracts_state() {
        for threads in [1, 4] {
            for policy in [
                DirectionPolicy::Fixed(Direction::Push),
                DirectionPolicy::Fixed(Direction::Pull),
                DirectionPolicy::adaptive(),
            ] {
                for (_, mode) in ExecutionMode::sweep() {
                    let r = run_two_sweep(policy, threads, mode);
                    assert!(r.output[..6].iter().all(|&m| m == 1), "{policy:?} {mode:?}");
                    assert!(r.output[6..].iter().all(|&m| m == 2), "{policy:?} {mode:?}");
                    assert_eq!(r.report.phases, 2);
                    assert!(r.report.phase_rounds(0).count() >= 3);
                    assert!(r.report.phase_rounds(1).count() >= 5);
                }
            }
        }
    }

    #[test]
    fn partition_aware_push_reports_exchange_traffic_and_no_atomics() {
        use pp_telemetry::CountingProbe;
        let g = two_component_graph();
        let engine = Engine::new(4);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let program = TwoSweep {
            mark: (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect(),
            sweeps: 0,
        };
        let r = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .mode(ExecutionMode::PartitionAware)
            .run(&g, program);
        assert!(r.output[..6].iter().all(|&m| m == 1));
        let counts = probes.merged();
        assert_eq!(counts.atomics, 0, "owner-computes push must not CAS");
        // 12 vertices over 4 threads: the cycle and the path both cross
        // part boundaries, so some updates must travel through buffers.
        assert!(r.report.remote_updates() > 0);
        assert_eq!(counts.remote_sends, r.report.remote_updates());
        assert!(r.report.max_buffer_peak() >= 1);
        assert!(counts.barriers as usize >= r.report.num_rounds());
    }

    #[test]
    fn report_rounds_are_contiguous_and_phase_ordered() {
        let r = run_two_sweep(
            DirectionPolicy::Fixed(Direction::Push),
            2,
            ExecutionMode::Atomic,
        );
        for (i, stat) in r.report.rounds.iter().enumerate() {
            assert_eq!(stat.round as usize, i);
        }
        assert!(r.report.rounds.windows(2).all(|w| w[0].phase <= w[1].phase));
        assert_eq!(r.report.num_rounds(), r.report.push_rounds());
    }
}
