//! The `Runner`: what a *run* is — engine, direction policy, probe shards,
//! and the one shared round loop every [`Program`] executes on.
//!
//! Before this abstraction each algorithm hand-rolled its own loop
//! (direction handling, convergence check, telemetry plumbing); now the
//! loop exists exactly once, and a policy/scheduling improvement reaches
//! all ten algorithms at the same commit.

use pp_core::Direction;
use pp_graph::CsrGraph;
use pp_telemetry::timing::Clock;
use pp_telemetry::MetricsLevel;

use crate::frontier::Frontier;
use crate::ops::Engine;
use crate::partitioned::{ExecutionMode, PaContext};
use crate::policy::DirectionPolicy;
use crate::probes::{ProbeShards, ShardProbe};
use crate::program::{PhaseKernel, Program, RoundCtx};
use crate::report::{RoundStat, RunReport};

/// A completed run: the program's output plus the unified round telemetry.
#[derive(Clone, Debug)]
pub struct Run<T> {
    /// What the program computed.
    pub output: T,
    /// Per-round direction/frontier/edge statistics.
    pub report: RunReport,
}

/// Builder for program runs: borrows an [`Engine`] and a probe-shard set,
/// carries a [`DirectionPolicy`], and drives any [`Program`] to its
/// fixpoint. Reusable: `run` takes `&self` and clones the policy, so one
/// runner can execute many programs (or the same program repeatedly).
pub struct Runner<'a, P: ShardProbe> {
    engine: &'a Engine,
    probes: &'a ProbeShards<P>,
    policy: DirectionPolicy,
    mode: ExecutionMode,
    metrics: MetricsLevel,
}

impl<'a, P: ShardProbe> Runner<'a, P> {
    /// A runner over `engine` with per-worker `probes`, defaulting to the
    /// adaptive direction policy, atomic push execution, and no run-wide
    /// metrics collection ([`MetricsLevel::Off`]).
    pub fn new(engine: &'a Engine, probes: &'a ProbeShards<P>) -> Self {
        Self {
            engine,
            probes,
            policy: DirectionPolicy::adaptive(),
            mode: ExecutionMode::Atomic,
            metrics: MetricsLevel::Off,
        }
    }

    /// Selects the direction policy for subsequent runs.
    pub fn policy(mut self, policy: DirectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects how push rounds execute (§5):
    /// [`ExecutionMode::PartitionAware`] replaces per-edge atomics with
    /// plain local writes plus an owner-computes exchange, binding one
    /// partition part to each engine thread. Pull rounds are unaffected.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects how much run-wide observability subsequent runs collect:
    /// policy decision records at [`MetricsLevel::Counts`], clocks and
    /// per-worker laps at [`MetricsLevel::Timing`], the per-round ×
    /// per-worker trace substrate at [`MetricsLevel::Trace`]. At
    /// [`MetricsLevel::Off`] (the default) the run takes exactly today's
    /// uninstrumented path and the report is identical to one from a
    /// runner without this knob.
    pub fn metrics(mut self, metrics: MetricsLevel) -> Self {
        self.metrics = metrics;
        self
    }

    /// The engine this runner schedules onto.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// Drives `program` to convergence and returns its output with the
    /// per-round report.
    ///
    /// Each iteration: ask the program for the phase's kernel family
    /// ([`Program::phase_kernel`]) and the policy for a direction, let the
    /// program see the round ([`Program::begin_round`]), then `edge_map`
    /// the frontier — or, for a [`PhaseKernel::VertexStep`] phase, skip
    /// edge traversal entirely (the round's vertex work happened in
    /// `begin_round`). When a phase drains, [`Program::next_phase`] reseeds
    /// or ends the run.
    ///
    /// The report's `phases` counts the phases that executed at least one
    /// round; a run whose every frontier was empty reports `phases == 0`
    /// and `rounds.is_empty()`, exactly like [`RunReport::default`].
    pub fn run<Pg: Program<P>>(&self, g: &CsrGraph, mut program: Pg) -> Run<Pg::Output> {
        let mut policy = self.policy;
        // Partition-aware runs bind one part per engine thread and build
        // the §5 split lazily at the first push round (a run whose policy
        // never pushes skips the O(n + m) build entirely); the context —
        // split representation and exchange buffers — then persists (and
        // keeps its buffer capacity) across every push round of the run.
        let mut pa: Option<PaContext> = None;
        let metrics = self.metrics;
        // All observability is opt-in per level: at `Off`, `clock` is None,
        // lap recording stays off, and every gate below is a dead branch —
        // the loop body is today's uninstrumented path and the report it
        // builds is identical to the legacy one.
        let clock = metrics.times().then(Clock::start);
        let pool = self.engine.pool();
        if metrics.times() {
            pool.reset_laps();
            pool.set_lap_recording(true);
        }
        // Previous cumulative per-worker busy, for per-round deltas.
        let mut lap_mark: Vec<u64> = Vec::new();
        let mut frontier = program.initial_frontier(g);
        let mut report = RunReport::default();
        let mut round = 0u32;
        let mut phase = 0u32;
        let mut ran_this_phase = false;
        loop {
            while !frontier.is_empty() {
                let kernel = program.phase_kernel(phase);
                // A vertex step runs no edge kernel: don't feed the
                // adaptive hysteresis a frontier it will never traverse —
                // and don't charge |E_F| it will never touch.
                let (dir, decision) = match kernel {
                    PhaseKernel::EdgeMap => {
                        let d = policy.next_decision(&frontier, g);
                        (d.dir, (metrics >= MetricsLevel::Counts).then_some(d))
                    }
                    PhaseKernel::VertexStep => (policy.current(), None),
                };
                let stat_frontier = frontier.len();
                let stat_edges = match kernel {
                    PhaseKernel::EdgeMap => frontier.edge_count(g),
                    PhaseKernel::VertexStep => 0,
                };
                let start_ns = clock.as_ref().map_or(0, Clock::now_ns);
                let ctx = RoundCtx { round, phase, dir };
                program.begin_round(ctx, g, &mut frontier, self.engine, self.probes);
                // Batched programs publish their per-round lane count in
                // `begin_round` (where the lane fold happens); query it
                // while the round's frontier is current.
                let lanes_active = program.lanes_active().unwrap_or(0);
                let (next, stats) = match (kernel, self.mode, dir) {
                    (PhaseKernel::VertexStep, _, _) => (Frontier::empty(g.num_vertices()), None),
                    (PhaseKernel::EdgeMap, ExecutionMode::PartitionAware, Direction::Push) => {
                        let pactx =
                            pa.get_or_insert_with(|| PaContext::new(g, self.engine.threads()));
                        let (next, stats) =
                            pactx.push_round(self.engine, g, &mut frontier, &program, self.probes);
                        (next, Some(stats))
                    }
                    (PhaseKernel::EdgeMap, _, _) => (
                        self.engine
                            .edge_map(g, &mut frontier, dir, &program, self.probes),
                        None,
                    ),
                };
                frontier = next;
                let duration_ns = clock
                    .as_ref()
                    .map_or(0, |c| c.now_ns().saturating_sub(start_ns));
                if metrics.traces() {
                    // Per-round worker busy = delta of the pool's cumulative
                    // ledgers across the round (the round barrier has
                    // passed, so the ledgers are quiescent here).
                    let laps = pool.laps();
                    lap_mark.resize(laps.len(), 0);
                    let row: Vec<u64> = laps
                        .iter()
                        .zip(lap_mark.iter())
                        .map(|(lap, prev)| lap.busy_ns.saturating_sub(*prev))
                        .collect();
                    for (prev, lap) in lap_mark.iter_mut().zip(&laps) {
                        *prev = lap.busy_ns;
                    }
                    report.round_worker_busy.push(row);
                }
                report.rounds.push(RoundStat {
                    round,
                    phase,
                    dir,
                    frontier: stat_frontier,
                    frontier_edges: stat_edges,
                    remote_updates: stats.map_or(0, |s| s.remote_updates),
                    buffer_peak: stats.map_or(0, |s| s.buffer_peak),
                    start_ns,
                    duration_ns,
                    decision,
                    lanes_active,
                });
                round += 1;
                ran_this_phase = true;
            }
            match program.next_phase(g, self.engine, self.probes) {
                Some(next) => {
                    frontier = next;
                    // A reseed only opens a new phase index if the current
                    // one actually executed a round — so phase indices in
                    // the report stay contiguous (0..phases) even when a
                    // program reseeds with an empty frontier and the
                    // runner asks again.
                    if ran_this_phase {
                        phase += 1;
                        ran_this_phase = false;
                    }
                }
                None => break,
            }
        }
        // Convention (documented on `RunReport::phases`): count the phases
        // that actually executed a round, so the zero-round run reports 0 —
        // identical to `RunReport::default()` — instead of a phantom 1.
        report.phases = phase + u32::from(ran_this_phase);
        // The per-source axis must be read before `finish` consumes the
        // program; single-source programs return the empty default, so
        // their reports keep the pre-batch shape (and the zero-round run
        // still equals `RunReport::default()`).
        report.sources = program.source_stats();
        if let Some(c) = &clock {
            report.elapsed_ns = c.now_ns();
            report.worker_laps = pool.laps();
            pool.set_lap_recording(false);
        }
        Run {
            output: program.finish(g),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::Frontier;
    use crate::ops::EdgeKernel;
    use crate::program::frontier_where;
    use pp_core::Direction;
    use pp_graph::{VertexId, Weight};
    use pp_telemetry::{NullProbe, Probe};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Two-phase reachability: phase 0 marks the component of vertex 0,
    /// phase 1 the component of the smallest unmarked vertex (if any).
    struct TwoSweep {
        mark: Vec<AtomicU32>,
        sweeps: u32,
    }

    impl<P: Probe> EdgeKernel<P> for TwoSweep {
        fn push_update(&self, _u: VertexId, v: VertexId, _w: Weight, _probe: &P) -> bool {
            self.mark[v as usize]
                .compare_exchange(0, self.sweeps, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        }

        fn pull_gather(&self, v: VertexId, _u: VertexId, _w: Weight, _probe: &P) -> bool {
            // Own-cell write; candidate gate keeps this exactly-once.
            self.mark[v as usize].store(self.sweeps, Ordering::Relaxed);
            true
        }

        fn pull_candidate(&self, v: VertexId, _probe: &P) -> bool {
            self.mark[v as usize].load(Ordering::Relaxed) == 0
        }

        fn pull_saturates(&self) -> bool {
            true
        }
    }

    impl<P: ShardProbe> Program<P> for TwoSweep {
        type Output = Vec<u32>;

        fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
            self.sweeps = 1;
            self.mark[0].store(1, Ordering::Relaxed);
            Frontier::single(g, 0)
        }

        fn next_phase(
            &mut self,
            g: &CsrGraph,
            _engine: &Engine,
            _probes: &ProbeShards<P>,
        ) -> Option<Frontier> {
            if self.sweeps >= 2 {
                return None;
            }
            let seed =
                (0..g.num_vertices()).find(|&v| self.mark[v].load(Ordering::Relaxed) == 0)?;
            self.sweeps = 2;
            self.mark[seed].store(2, Ordering::Relaxed);
            Some(frontier_where(g, |v| v as usize == seed))
        }

        fn finish(self, _g: &CsrGraph) -> Vec<u32> {
            self.mark.into_iter().map(AtomicU32::into_inner).collect()
        }
    }

    fn two_component_graph() -> CsrGraph {
        // Component A: cycle 0..6; component B: path 6..12.
        let mut b = pp_graph::GraphBuilder::undirected(12);
        for i in 0..6u32 {
            b.add_edge(i, (i + 1) % 6);
        }
        for i in 6..11u32 {
            b.add_edge(i, i + 1);
        }
        b.build()
    }

    fn run_two_sweep(
        policy: DirectionPolicy,
        threads: usize,
        mode: ExecutionMode,
    ) -> Run<Vec<u32>> {
        let g = two_component_graph();
        let engine = Engine::new(threads);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let program = TwoSweep {
            mark: (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect(),
            sweeps: 0,
        };
        Runner::new(&engine, &probes)
            .policy(policy)
            .mode(mode)
            .run(&g, program)
    }

    #[test]
    fn phases_reseed_and_finish_extracts_state() {
        for threads in [1, 4] {
            for policy in [
                DirectionPolicy::Fixed(Direction::Push),
                DirectionPolicy::Fixed(Direction::Pull),
                DirectionPolicy::adaptive(),
            ] {
                for (_, mode) in ExecutionMode::sweep() {
                    let r = run_two_sweep(policy, threads, mode);
                    assert!(r.output[..6].iter().all(|&m| m == 1), "{policy:?} {mode:?}");
                    assert!(r.output[6..].iter().all(|&m| m == 2), "{policy:?} {mode:?}");
                    assert_eq!(r.report.phases, 2);
                    assert!(r.report.phase_rounds(0).count() >= 3);
                    assert!(r.report.phase_rounds(1).count() >= 5);
                }
            }
        }
    }

    #[test]
    fn partition_aware_push_reports_exchange_traffic_and_no_atomics() {
        use pp_telemetry::CountingProbe;
        let g = two_component_graph();
        let engine = Engine::new(4);
        let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
        let program = TwoSweep {
            mark: (0..g.num_vertices()).map(|_| AtomicU32::new(0)).collect(),
            sweeps: 0,
        };
        let r = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .mode(ExecutionMode::PartitionAware)
            .run(&g, program);
        assert!(r.output[..6].iter().all(|&m| m == 1));
        let counts = probes.merged();
        assert_eq!(counts.atomics, 0, "owner-computes push must not CAS");
        // 12 vertices over 4 threads: the cycle and the path both cross
        // part boundaries, so some updates must travel through buffers.
        assert!(r.report.remote_updates() > 0);
        assert_eq!(counts.remote_sends, r.report.remote_updates());
        assert!(r.report.max_buffer_peak() >= 1);
        assert!(counts.barriers as usize >= r.report.num_rounds());
    }

    /// A program that never activates anything: empty initial frontier,
    /// immediate convergence.
    struct NullProgram;

    impl<P: Probe> EdgeKernel<P> for NullProgram {
        fn push_update(&self, _u: VertexId, _v: VertexId, _w: Weight, _p: &P) -> bool {
            false
        }
        fn pull_gather(&self, _v: VertexId, _u: VertexId, _w: Weight, _p: &P) -> bool {
            false
        }
    }

    impl<P: ShardProbe> Program<P> for NullProgram {
        type Output = ();

        fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
            Frontier::empty(g.num_vertices())
        }

        fn finish(self, _g: &CsrGraph) {}
    }

    #[test]
    fn zero_round_run_reports_zero_phases_like_the_default_report() {
        // The convention documented on `RunReport::phases`: a run that never
        // executes a round is indistinguishable from `RunReport::default()`.
        let g = two_component_graph();
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        for policy in [
            DirectionPolicy::Fixed(Direction::Push),
            DirectionPolicy::adaptive(),
        ] {
            for (_, mode) in ExecutionMode::sweep() {
                let r = Runner::new(&engine, &probes)
                    .policy(policy)
                    .mode(mode)
                    .run(&g, NullProgram);
                assert_eq!(r.report, RunReport::default(), "{policy:?} {mode:?}");
                assert_eq!(r.report.phases, 0);
                assert_eq!(r.report.num_rounds(), 0);
            }
        }
    }

    /// A program that reseeds with an empty frontier once between its two
    /// real phases: marks vertex `v` on each round of a single-vertex
    /// frontier, walking 0 → (empty reseed) → 6.
    struct GappyReseed {
        mark: Vec<AtomicU32>,
        reseeds: u32,
    }

    impl<P: Probe> EdgeKernel<P> for GappyReseed {
        fn push_update(&self, _u: VertexId, _v: VertexId, _w: Weight, _p: &P) -> bool {
            false
        }
        fn pull_gather(&self, _v: VertexId, _u: VertexId, _w: Weight, _p: &P) -> bool {
            false
        }
        fn pull_candidate(&self, _v: VertexId, _p: &P) -> bool {
            false
        }
    }

    impl<P: ShardProbe> Program<P> for GappyReseed {
        type Output = Vec<u32>;

        fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
            Frontier::single(g, 0)
        }

        fn begin_round(
            &mut self,
            _ctx: RoundCtx,
            _g: &CsrGraph,
            frontier: &mut Frontier,
            _engine: &Engine,
            _probes: &ProbeShards<P>,
        ) {
            for &v in frontier.vertices() {
                self.mark[v as usize].store(1, Ordering::Relaxed);
            }
        }

        fn next_phase(
            &mut self,
            g: &CsrGraph,
            _engine: &Engine,
            _probes: &ProbeShards<P>,
        ) -> Option<Frontier> {
            self.reseeds += 1;
            match self.reseeds {
                1 => Some(Frontier::empty(g.num_vertices())),
                2 => Some(Frontier::single(g, 6)),
                _ => None,
            }
        }

        fn finish(self, _g: &CsrGraph) -> Vec<u32> {
            self.mark.into_iter().map(AtomicU32::into_inner).collect()
        }
    }

    #[test]
    fn empty_reseeds_do_not_gap_the_phase_indices() {
        // Regression for the phases convention: a reseed with an empty
        // frontier must not burn a phase index, so `phases` stays a valid
        // bound for `phase_rounds(0..phases)` sweeps.
        let g = two_component_graph();
        let engine = Engine::new(2);
        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
        let r = Runner::new(&engine, &probes)
            .policy(DirectionPolicy::Fixed(Direction::Push))
            .run(
                &g,
                GappyReseed {
                    mark: (0..12).map(|_| AtomicU32::new(0)).collect(),
                    reseeds: 0,
                },
            );
        assert_eq!(r.output[0], 1);
        assert_eq!(r.output[6], 1);
        assert_eq!(r.report.phases, 2, "the empty reseed is not a phase");
        let indices: Vec<u32> = r.report.rounds.iter().map(|s| s.phase).collect();
        assert_eq!(indices, vec![0, 1], "contiguous despite the empty reseed");
        for p in 0..r.report.phases {
            assert_eq!(r.report.phase_rounds(p).count(), 1);
        }
    }

    /// Two-phase program: an edge phase (mark component of 0) followed by a
    /// vertex-step phase that doubles every mark in `begin_round`.
    struct SweepThenScale {
        mark: Vec<AtomicU32>,
        scaled: bool,
    }

    impl<P: Probe> EdgeKernel<P> for SweepThenScale {
        fn push_update(&self, _u: VertexId, v: VertexId, _w: Weight, _p: &P) -> bool {
            self.mark[v as usize]
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        }
        fn pull_gather(&self, v: VertexId, _u: VertexId, _w: Weight, _p: &P) -> bool {
            self.mark[v as usize].store(1, Ordering::Relaxed);
            true
        }
        fn pull_candidate(&self, v: VertexId, _p: &P) -> bool {
            self.mark[v as usize].load(Ordering::Relaxed) == 0
        }
        fn pull_saturates(&self) -> bool {
            true
        }
    }

    impl<P: ShardProbe> Program<P> for SweepThenScale {
        type Output = Vec<u32>;

        fn initial_frontier(&mut self, g: &CsrGraph) -> Frontier {
            self.mark[0].store(1, Ordering::Relaxed);
            Frontier::single(g, 0)
        }

        fn phase_kernel(&self, phase: u32) -> crate::program::PhaseKernel {
            if phase == 0 {
                crate::program::PhaseKernel::EdgeMap
            } else {
                crate::program::PhaseKernel::VertexStep
            }
        }

        fn begin_round(
            &mut self,
            ctx: RoundCtx,
            g: &CsrGraph,
            frontier: &mut Frontier,
            engine: &Engine,
            probes: &ProbeShards<P>,
        ) {
            if ctx.phase == 1 {
                let mark = &self.mark;
                engine.vertex_map(g, frontier, probes, |v, _| {
                    let m = mark[v as usize].load(Ordering::Relaxed);
                    mark[v as usize].store(m * 2, Ordering::Relaxed);
                });
                self.scaled = true;
            }
        }

        fn next_phase(
            &mut self,
            g: &CsrGraph,
            _engine: &Engine,
            _probes: &ProbeShards<P>,
        ) -> Option<Frontier> {
            if self.scaled {
                return None;
            }
            Some(frontier_where(g, |v| {
                self.mark[v as usize].load(Ordering::Relaxed) != 0
            }))
        }

        fn finish(self, _g: &CsrGraph) -> Vec<u32> {
            self.mark.into_iter().map(AtomicU32::into_inner).collect()
        }
    }

    #[test]
    fn vertex_step_phases_skip_edge_traversal_but_appear_in_the_report() {
        use pp_telemetry::CountingProbe;
        let g = two_component_graph();
        for (_, mode) in ExecutionMode::sweep() {
            let engine = Engine::new(2);
            let probes: ProbeShards<CountingProbe> = ProbeShards::new(engine.threads());
            let r = Runner::new(&engine, &probes)
                .policy(DirectionPolicy::Fixed(Direction::Push))
                .mode(mode)
                .run(
                    &g,
                    SweepThenScale {
                        mark: (0..12).map(|_| AtomicU32::new(0)).collect(),
                        scaled: false,
                    },
                );
            // Component of 0 (the 6-cycle) marked then doubled; the rest 0.
            assert!(r.output[..6].iter().all(|&m| m == 2), "{mode:?}");
            assert!(r.output[6..].iter().all(|&m| m == 0), "{mode:?}");
            assert_eq!(r.report.phases, 2, "{mode:?}");
            // The vertex step is one round consuming the 6-vertex frontier,
            // with no edge traversal: no atomics, no exchange traffic.
            let steps: Vec<_> = r.report.phase_rounds(1).collect();
            assert_eq!(steps.len(), 1, "a vertex-step phase is single-round");
            assert_eq!(steps[0].frontier, 6);
            assert_eq!(steps[0].frontier_edges, 0, "no edge traversal charged");
            assert_eq!(steps[0].remote_updates, 0);
        }
    }

    #[test]
    fn report_rounds_are_contiguous_and_phase_ordered() {
        let r = run_two_sweep(
            DirectionPolicy::Fixed(Direction::Push),
            2,
            ExecutionMode::Atomic,
        );
        for (i, stat) in r.report.rounds.iter().enumerate() {
            assert_eq!(stat.round as usize, i);
        }
        assert!(r.report.rounds.windows(2).all(|w| w[0].phase <= w[1].phase));
        assert_eq!(r.report.num_rounds(), r.report.push_rounds());
    }
}
