//! `pp-serve` — a resident graph-query service over the push/pull engine.
//!
//! The batch tools (`ppgraph run`, `pp-bench`) pay the graph load on every
//! invocation; for a 2^20-vertex snapshot that dwarfs the BFS it runs.
//! This crate inverts the lifecycle: load a [`CsrGraph`] **once**, keep a
//! pool of worker runners hot, and answer queries over a newline-delimited
//! JSON protocol — each request naming an algorithm from
//! [`pp_engine::registry`] and the usual knobs (`source`, direction
//! policy, execution mode), each response carrying the same digest and
//! report a direct [`pp_engine::Runner`] run would produce, plus the
//! query's end-to-end latency.
//!
//! Three layers:
//!
//! * [`protocol`] — the wire format: strict request parsing (unknown
//!   fields are errors, not typos silently defaulted) and single-line
//!   response rendering, including structured failures tagged with
//!   [`pp_engine::registry::RunError::kind`].
//! * [`server`] — [`Server`]: the bounded admission queue, the worker
//!   pool (one [`pp_engine::Engine`] per worker), the service metrics
//!   layer (per-`{algo, outcome}` counters and windowed queue/run latency
//!   histograms in a [`pp_telemetry::MetricsRegistry`], Prometheus text
//!   exposition via the `metrics` meta-query, optional per-query Chrome
//!   traces via [`ServeConfig::trace_queries`]), and the stdio/TCP
//!   transports. Every run response decomposes its latency exactly:
//!   `queue_ns + run_ns == latency_ns`.
//! * [`client`] — [`Client`]: a lock-step connection for scripts and
//!   tests (`ppgraph query` and `ppgraph top` are thin wrappers around
//!   it).
//!
//! ## A session
//!
//! ```text
//! $ ppgraph serve web.ppg --port 7878 &
//! $ ppgraph query --connect 127.0.0.1:7878 <<'EOF'
//! {"algo": "bfs", "source": 0}
//! {"algo": "pagerank", "params": {"direction": "pull"}}
//! {"op": "stats"}
//! {"op": "metrics"}
//! EOF
//! ```
//!
//! Every response is one line of JSON; `ok: false` responses carry
//! `error.kind` ∈ {`bad_request`, `overloaded`, `shutting_down`} ∪
//! [`RunError::kind`](pp_engine::registry::RunError::kind)'s tags.
//!
//! The [`json`] module (re-exported by `pp-bench` for its report tooling)
//! is the hand-rolled reader/writer the protocol is built on.
//!
//! [`CsrGraph`]: pp_graph::CsrGraph

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{
    parse_request, AlgoStats, LatencySplit, LatencySummary, Request, StatsSnapshot,
};
pub use server::{ServeConfig, Server};
