//! A minimal lock-step client for the NDJSON protocol: send one request
//! line, read one response line. Concurrency comes from opening more
//! connections (each [`Client`] is one), not from pipelining on a single
//! one — the server answers run queries in completion order, so a
//! pipelining caller must match responses by `id` itself; [`Client`]
//! sidesteps that by never having two requests in flight.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a running `pp-serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Like [`Client::connect`] but retries until the server comes up or
    /// `deadline` elapses — for scripts that just forked `ppgraph serve`
    /// in the background.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        deadline: Duration,
    ) -> io::Result<Self> {
        let clock = pp_telemetry::timing::Clock::start();
        let deadline_ns = deadline.as_nanos().min(u64::MAX as u128) as u64;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if clock.now_ns() >= deadline_ns => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request line and blocks for its response line. The
    /// request must be a single line (no interior newlines); the trailing
    /// newline is added here.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        debug_assert!(!line.contains('\n'), "requests are one line each");
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}
