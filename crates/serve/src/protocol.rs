//! The serve wire protocol: newline-delimited JSON, one request and one
//! response per line.
//!
//! Requests are parsed from untrusted bytes with [`crate::json`] and
//! validated strictly (unknown fields are rejected — a typo like
//! `"soruce"` should fail loudly, not silently run from vertex 0).
//! Responses are rendered as single-line JSON so they frame cleanly on a
//! byte stream; the `rows` array inside a run response matches the record
//! shape of `ppgraph run --json` (`dataset`/`mode`/`algo`/`threads`/`ms`),
//! so the same tooling can consume both.
//!
//! ## Requests
//!
//! ```json
//! {"algo": "bfs", "source": 3}
//! {"algo": "bc", "params": {"direction": "pull", "bc_sources": 4}, "metrics": true, "id": 7}
//! {"op": "stats"}
//! {"op": "metrics"}
//! {"op": "ping"}
//! {"op": "shutdown"}
//! ```
//!
//! * `op` — `"run"` (default), `"stats"`, `"metrics"` (Prometheus text
//!   exposition, returned in the response's `body` string), `"ping"`, or
//!   `"shutdown"`.
//! * `algo` — registry name or alias (run requests only; required).
//! * `source` — source vertex for rooted algorithms (default 0).
//! * `params` — optional object: `direction` (`push|pull|adaptive`),
//!   `mode` (`atomic|pa`), `lp_iters`, `bc_sources`.
//! * `metrics` — when true the response report carries wall-clock timing
//!   (`elapsed_ns`, switches) collected at `MetricsLevel::Timing`.
//! * `id` — any JSON scalar, echoed verbatim in the response so clients
//!   can match responses to requests when queries execute out of order.
//!
//! ## Responses
//!
//! ```json
//! {"ok": true, "id": 7, "rows": [{"dataset": "g.ppg", "mode": "atomic",
//!  "algo": "bfs adaptive", "threads": 1, "ms": 1.25}],
//!  "summary": {"reached": "1024", "depth": "9"},
//!  "report": {"rounds": 10, ...},
//!  "latency_ns": 1830211, "queue_ns": 120331, "run_ns": 1709880, "worker": 1,
//!  "batched": 1}
//! {"ok": false, "id": 8, "error": {"kind": "overloaded",
//!  "message": "admission queue full (capacity 64)"}}
//! ```
//!
//! `error.kind` is one of [`RunError::kind`]'s tags
//! (`unknown_algo`/`source_out_of_range`/`needs_weights`/`bad_param`) or a
//! transport-level tag: [`KIND_BAD_REQUEST`] (the line did not parse or
//! validate), [`KIND_OVERLOADED`] (admission control refused the query),
//! [`KIND_SHUTTING_DOWN`] (the server is draining).
//!
//! `batched` reports how many queries shared the traversal that produced
//! the response (workers coalesce compatible queued `bfs` queries into one
//! bit-parallel multi-source run — see [`crate::server`]). Everything else
//! about a batched response — summary, report digests, `id` echo — is
//! identical to the query running alone.

use pp_core::Direction;
use pp_engine::registry::{AlgoRun, RunError};
use pp_engine::{DirectionPolicy, ExecutionMode};
use pp_graph::VertexId;

use crate::json::{self, escape, Value};

/// `error.kind` for a line that failed to parse or validate as a request.
pub const KIND_BAD_REQUEST: &str = "bad_request";
/// `error.kind` for a query refused by admission control (queue full).
pub const KIND_OVERLOADED: &str = "overloaded";
/// `error.kind` for a query arriving while the server drains.
pub const KIND_SHUTTING_DOWN: &str = "shutting_down";

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Execute a registry algorithm.
    Run(QuerySpec),
    /// Report uptime, served/rejected counters, latency percentiles.
    Stats,
    /// Return the Prometheus text exposition of every service metric.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Stop accepting queries, drain the queue, exit the serve loop.
    Shutdown,
}

/// Everything a run request carries. Defaults mirror
/// [`pp_engine::registry::RunConfig::new`] so a bare `{"algo": "cc"}` runs
/// the same configuration `ppgraph run cc` would.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The request's `id`, pre-rendered as a JSON scalar for echoing.
    pub id: Option<String>,
    /// Registry algorithm name or alias.
    pub algo: String,
    /// Source vertex for rooted algorithms.
    pub source: VertexId,
    /// Direction schedule (`push`/`pull`/`adaptive`).
    pub policy: DirectionPolicy,
    /// Human name of the policy, echoed into the response row.
    pub policy_name: &'static str,
    /// Push execution mode.
    pub mode: ExecutionMode,
    /// Human name of the mode, echoed into the response row.
    pub mode_name: &'static str,
    /// Iteration cap for label propagation.
    pub lp_iters: usize,
    /// Source cap for betweenness centrality.
    pub bc_sources: Option<usize>,
    /// Collect wall-clock timing for this query.
    pub metrics: bool,
}

impl Default for QuerySpec {
    fn default() -> Self {
        Self {
            id: None,
            algo: String::new(),
            source: 0,
            policy: DirectionPolicy::adaptive(),
            policy_name: "adaptive",
            mode: ExecutionMode::Atomic,
            mode_name: "atomic",
            lp_iters: 20,
            bc_sources: Some(8),
            metrics: false,
        }
    }
}

fn render_scalar(v: &Value) -> Option<String> {
    match v {
        Value::Null => Some("null".to_string()),
        Value::Bool(b) => Some(b.to_string()),
        Value::Num(n) => Some(format_f64(*n)),
        Value::Str(s) => Some(format!("\"{}\"", escape(s))),
        Value::Arr(_) | Value::Obj(_) => None,
    }
}

/// Renders an `f64` as JSON: integers without a fraction, everything else
/// via the shortest round-trip form Rust's formatter produces.
fn format_f64(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn as_usize(v: &Value, field: &str) -> Result<usize, String> {
    match v {
        Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9e15 => Ok(*n as usize),
        _ => Err(format!("{field} must be a non-negative integer")),
    }
}

/// Parses one request line. `Err` is a human-readable message the server
/// wraps into a [`KIND_BAD_REQUEST`] response; it never panics, whatever
/// the bytes.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = match &doc {
        Value::Obj(m) => m,
        _ => return Err("a request must be a JSON object".to_string()),
    };
    for key in obj.keys() {
        if !matches!(
            key.as_str(),
            "op" | "algo" | "source" | "params" | "metrics" | "id"
        ) {
            return Err(format!("unknown field: {key}"));
        }
    }
    let op = match doc.get("op") {
        None => "run",
        Some(Value::Str(s)) => s.as_str(),
        Some(_) => return Err("op must be a string".to_string()),
    };
    match op {
        "stats" => return Ok(Request::Stats),
        "metrics" => return Ok(Request::Metrics),
        "ping" => return Ok(Request::Ping),
        "shutdown" => return Ok(Request::Shutdown),
        "run" => {}
        other => {
            return Err(format!(
                "unknown op: {other} (run|stats|metrics|ping|shutdown)"
            ))
        }
    }

    let algo = match doc.get("algo") {
        Some(Value::Str(s)) if !s.is_empty() => s.clone(),
        Some(_) => return Err("algo must be a non-empty string".to_string()),
        None => return Err("missing field: algo".to_string()),
    };
    let mut spec = QuerySpec {
        algo,
        ..QuerySpec::default()
    };
    if let Some(v) = doc.get("source") {
        let s = as_usize(v, "source")?;
        spec.source = VertexId::try_from(s).map_err(|_| "source exceeds u32".to_string())?;
    }
    if let Some(v) = doc.get("metrics") {
        spec.metrics = v.bool().ok_or("metrics must be a boolean")?;
    }
    if let Some(v) = doc.get("id") {
        spec.id = Some(render_scalar(v).ok_or("id must be a JSON scalar")?);
    }
    if let Some(params) = doc.get("params") {
        let pobj = match params {
            Value::Obj(m) => m,
            _ => return Err("params must be an object".to_string()),
        };
        for key in pobj.keys() {
            if !matches!(
                key.as_str(),
                "direction" | "mode" | "lp_iters" | "bc_sources"
            ) {
                return Err(format!("unknown params field: {key}"));
            }
        }
        if let Some(v) = params.get("direction") {
            (spec.policy, spec.policy_name) = match v.str() {
                Some("push") => (DirectionPolicy::Fixed(Direction::Push), "push"),
                Some("pull") => (DirectionPolicy::Fixed(Direction::Pull), "pull"),
                Some("adaptive") => (DirectionPolicy::adaptive(), "adaptive"),
                _ => return Err("direction must be push|pull|adaptive".to_string()),
            };
        }
        if let Some(v) = params.get("mode") {
            (spec.mode, spec.mode_name) = match v.str() {
                Some("atomic") => (ExecutionMode::Atomic, "atomic"),
                Some("pa") => (ExecutionMode::PartitionAware, "pa"),
                _ => return Err("mode must be atomic|pa".to_string()),
            };
        }
        if let Some(v) = params.get("lp_iters") {
            spec.lp_iters = as_usize(v, "lp_iters")?;
        }
        if let Some(v) = params.get("bc_sources") {
            // `Some(0)` flows through to the registry, which refuses it as
            // a structured `bad_param` — the protocol does not reinterpret
            // zero the way the CLI's `--bc-sources 0` (= all) does.
            spec.bc_sources = Some(as_usize(v, "bc_sources")?);
        }
    }
    Ok(Request::Run(spec))
}

fn push_id(out: &mut String, id: Option<&str>) {
    if let Some(id) = id {
        out.push_str(", \"id\": ");
        out.push_str(id);
    }
}

/// The latency decomposition of one query's life: `queue_ns` (admission to
/// dequeue by a worker runner) + `run_ns` (dequeue to completion) =
/// `latency_ns` exactly (all three cut from the same clock readings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySplit {
    /// Nanoseconds spent waiting in the admission queue.
    pub queue_ns: u64,
    /// Nanoseconds spent executing on the worker runner.
    pub run_ns: u64,
    /// End-to-end nanoseconds (admission to completion).
    pub latency_ns: u64,
    /// The worker runner that executed the query.
    pub worker: usize,
    /// How many queries shared the traversal that produced this response.
    /// `1` means the query ran alone; `k > 1` means the worker coalesced it
    /// with `k - 1` compatible queued queries into one bit-parallel batched
    /// run (one lane per source), and `run_ns` is that shared run's time.
    pub batched: usize,
}

impl Default for LatencySplit {
    fn default() -> Self {
        Self {
            queue_ns: 0,
            run_ns: 0,
            latency_ns: 0,
            worker: 0,
            batched: 1,
        }
    }
}

/// Renders a successful run response: one `ppgraph run --json`-compatible
/// row, the output digest, the aggregate report, the query's end-to-end
/// latency (admission to completion) with its queue/run decomposition, and
/// the worker that ran it. Single line, no interior newlines.
pub fn render_run_response(
    spec: &QuerySpec,
    dataset: &str,
    threads: usize,
    run: &AlgoRun,
    ms: f64,
    split: LatencySplit,
) -> String {
    let r = &run.report;
    let mut out = String::from("{\"ok\": true");
    push_id(&mut out, spec.id.as_deref());
    out.push_str(&format!(
        ", \"rows\": [{{\"dataset\": \"{}\", \"mode\": \"{}\", \"algo\": \"{} {}\", \
         \"threads\": {}, \"ms\": {:.3}}}]",
        escape(dataset),
        spec.mode_name,
        escape(&spec.algo),
        spec.policy_name,
        threads,
        ms
    ));
    out.push_str(", \"summary\": {");
    for (i, (k, v)) in run.summary.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
    }
    out.push('}');
    out.push_str(&format!(
        ", \"report\": {{\"rounds\": {}, \"phases\": {}, \"push_rounds\": {}, \
         \"pull_rounds\": {}, \"edges_traversed\": {}",
        r.num_rounds(),
        r.phases,
        r.push_rounds(),
        r.pull_rounds(),
        r.edges_traversed()
    ));
    if spec.metrics {
        out.push_str(&format!(
            ", \"elapsed_ns\": {}, \"round_duration_ns\": {}, \"switches\": {}",
            r.elapsed_ns,
            r.round_duration_ns(),
            r.switches()
        ));
    }
    out.push_str(&format!(
        "}}, \"latency_ns\": {}, \"queue_ns\": {}, \"run_ns\": {}, \"worker\": {}, \
         \"batched\": {}}}",
        split.latency_ns, split.queue_ns, split.run_ns, split.worker, split.batched
    ));
    out
}

/// Renders a structured failure (`ok: false`).
pub fn render_error(id: Option<&str>, kind: &str, message: &str) -> String {
    let mut out = String::from("{\"ok\": false");
    push_id(&mut out, id);
    out.push_str(&format!(
        ", \"error\": {{\"kind\": \"{}\", \"message\": \"{}\"}}}}",
        escape(kind),
        escape(message)
    ));
    out
}

/// Renders a [`RunError`] as its structured response.
pub fn render_run_error(id: Option<&str>, e: &RunError) -> String {
    render_error(id, e.kind(), &e.to_string())
}

/// Renders the ping acknowledgement.
pub fn render_pong() -> String {
    "{\"ok\": true, \"op\": \"ping\"}".to_string()
}

/// Renders the shutdown acknowledgement (sent before the drain begins).
pub fn render_shutdown_ack() -> String {
    "{\"ok\": true, \"op\": \"shutdown\", \"draining\": true}".to_string()
}

/// Count/mean/quantiles of one latency series, the unit every breakdown
/// entry is made of. All values in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples in the series.
    pub count: u64,
    /// Mean sample (ns).
    pub mean_ns: f64,
    /// Median estimate (ns).
    pub p50_ns: u64,
    /// 95th-percentile estimate (ns).
    pub p95_ns: u64,
    /// 99th-percentile estimate (ns).
    pub p99_ns: u64,
    /// Largest observed sample (ns).
    pub max_ns: u64,
}

impl From<&pp_telemetry::LogHistogram> for LatencySummary {
    fn from(h: &pp_telemetry::LogHistogram) -> Self {
        Self {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.p50(),
            p95_ns: h.p95(),
            p99_ns: h.p99(),
            max_ns: h.max(),
        }
    }
}

impl LatencySummary {
    fn render(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \
             \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
            self.count, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns, self.max_ns
        )
    }
}

/// One algorithm's row in the stats breakdown: how many queries it served
/// and erred, and its queue/run latency split, since boot and in-window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlgoStats {
    /// Canonical registry algorithm name.
    pub algo: String,
    /// Queries of this algorithm completed successfully.
    pub served: u64,
    /// Queries of this algorithm that returned a structured error.
    pub errors: u64,
    /// Since-boot queue-wait latency.
    pub queue: LatencySummary,
    /// Since-boot execution latency.
    pub run: LatencySummary,
    /// Queue-wait latency over the trailing window.
    pub window_queue: LatencySummary,
    /// Execution latency over the trailing window.
    pub window_run: LatencySummary,
}

/// A point-in-time view of the server's counters, rendered by
/// [`render_stats`] and filled in by `crate::server`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Nanoseconds since the server finished loading the graph.
    pub uptime_ns: u64,
    /// The served graph's name (snapshot path or `<stdin>`).
    pub dataset: String,
    /// Vertices in the resident graph.
    pub n: usize,
    /// Edges in the resident graph.
    pub m: usize,
    /// Worker runners executing queries.
    pub workers: usize,
    /// Engine threads per worker runner.
    pub threads_per_worker: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Queries waiting in the admission queue right now.
    pub queue_depth: usize,
    /// Run queries completed successfully.
    pub served: u64,
    /// Run queries refused by admission control.
    pub rejected: u64,
    /// Run queries that returned a structured error.
    pub errors: u64,
    /// `errors` decomposed by [`RunError::kind`] tag, tag-sorted.
    pub errors_by_kind: Vec<(String, u64)>,
    /// Per-query end-to-end latency: count, mean, p50/p95/p99, max (ns).
    pub latency_count: u64,
    /// Mean latency in nanoseconds.
    pub latency_mean_ns: f64,
    /// Median latency estimate (ns).
    pub latency_p50_ns: u64,
    /// 95th-percentile latency estimate (ns).
    pub latency_p95_ns: u64,
    /// 99th-percentile latency estimate (ns).
    pub latency_p99_ns: u64,
    /// Largest observed latency (ns).
    pub latency_max_ns: u64,
    /// Width of the trailing metrics window, in seconds.
    pub window_s: f64,
    /// Since-boot queue-wait latency across all algorithms.
    pub queue_lat: LatencySummary,
    /// Since-boot execution latency across all algorithms.
    pub run_lat: LatencySummary,
    /// Queue-wait latency over the trailing window.
    pub window_queue_lat: LatencySummary,
    /// Execution latency over the trailing window.
    pub window_run_lat: LatencySummary,
    /// Per-algorithm breakdown, algorithm-sorted.
    pub per_algo: Vec<AlgoStats>,
    /// Per-worker-runner busy share (`0.0..=1.0`), sampled at dequeue.
    pub worker_utilization: Vec<f64>,
    /// Batched runs executed (each covers ≥ 2 coalesced queries).
    pub batches: u64,
    /// Queries served through a shared batched run (each counted once).
    pub coalesced: u64,
    /// Largest batch executed so far (queries per run; 0 before any batch).
    pub max_batch: u64,
}

impl StatsSnapshot {
    /// Seconds since the server finished loading the graph.
    pub fn uptime_s(&self) -> f64 {
        self.uptime_ns as f64 / 1e9
    }
}

/// Renders the `stats` meta-query response. The PR-7 fields keep their
/// exact shapes; the latency decomposition, window, per-algo, error-kind,
/// and utilization sections are additive.
pub fn render_stats(s: &StatsSnapshot) -> String {
    let mut out = format!(
        "{{\"ok\": true, \"op\": \"stats\", \"uptime_ns\": {}, \"uptime_s\": {:.3}, \
         \"graph\": {{\"dataset\": \"{}\", \"n\": {}, \"m\": {}}}, \
         \"workers\": {}, \"threads_per_worker\": {}, \
         \"queue\": {{\"capacity\": {}, \"depth\": {}}}, \
         \"served\": {}, \"rejected\": {}, \"errors\": {}",
        s.uptime_ns,
        s.uptime_s(),
        escape(&s.dataset),
        s.n,
        s.m,
        s.workers,
        s.threads_per_worker,
        s.queue_capacity,
        s.queue_depth,
        s.served,
        s.rejected,
        s.errors,
    );
    out.push_str(", \"errors_by_kind\": {");
    for (i, (kind, n)) in s.errors_by_kind.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {n}", escape(kind)));
    }
    out.push('}');
    out.push_str(&format!(
        ", \"latency\": {{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \
         \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
        s.latency_count,
        s.latency_mean_ns,
        s.latency_p50_ns,
        s.latency_p95_ns,
        s.latency_p99_ns,
        s.latency_max_ns
    ));
    out.push_str(&format!(
        ", \"breakdown\": {{\"queue\": {}, \"run\": {}}}",
        s.queue_lat.render(),
        s.run_lat.render()
    ));
    out.push_str(&format!(
        ", \"window\": {{\"seconds\": {:.1}, \"queue\": {}, \"run\": {}}}",
        s.window_s,
        s.window_queue_lat.render(),
        s.window_run_lat.render()
    ));
    out.push_str(", \"algos\": [");
    for (i, a) in s.per_algo.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"algo\": \"{}\", \"served\": {}, \"errors\": {}, \
             \"queue\": {}, \"run\": {}, \"window_queue\": {}, \"window_run\": {}}}",
            escape(&a.algo),
            a.served,
            a.errors,
            a.queue.render(),
            a.run.render(),
            a.window_queue.render(),
            a.window_run.render()
        ));
    }
    out.push(']');
    out.push_str(&format!(
        ", \"batching\": {{\"batches\": {}, \"coalesced\": {}, \"max_batch\": {}}}",
        s.batches, s.coalesced, s.max_batch
    ));
    out.push_str(", \"workers_util\": [");
    for (i, u) in s.worker_utilization.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{u:.4}"));
    }
    out.push_str("]}");
    out
}

/// Renders the `metrics` meta-query response: the Prometheus text
/// exposition, JSON-escaped into the `body` field (unwrap it with
/// `ppgraph query --prom`, or any JSON reader, to get a scrapable
/// `.prom` document).
pub fn render_metrics_response(body: &str) -> String {
    format!(
        "{{\"ok\": true, \"op\": \"metrics\", \"format\": \"prometheus-text\", \
         \"body\": \"{}\"}}",
        escape(body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_run_request_gets_registry_defaults() {
        let r = parse_request(r#"{"algo": "cc"}"#).unwrap();
        let spec = match r {
            Request::Run(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(spec.algo, "cc");
        assert_eq!(spec.source, 0);
        assert_eq!(spec.policy_name, "adaptive");
        assert_eq!(spec.mode_name, "atomic");
        assert_eq!(spec.lp_iters, 20);
        assert_eq!(spec.bc_sources, Some(8));
        assert!(!spec.metrics);
        assert_eq!(spec.id, None);
    }

    #[test]
    fn full_run_request_parses_every_field() {
        let r = parse_request(
            r#"{"op": "run", "algo": "bc", "source": 7,
                "params": {"direction": "pull", "mode": "pa",
                           "lp_iters": 5, "bc_sources": 3},
                "metrics": true, "id": "q-1"}"#,
        )
        .unwrap();
        let spec = match r {
            Request::Run(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(spec.algo, "bc");
        assert_eq!(spec.source, 7);
        assert!(matches!(
            spec.policy,
            DirectionPolicy::Fixed(Direction::Pull)
        ));
        assert_eq!(spec.mode, ExecutionMode::PartitionAware);
        assert_eq!(spec.policy_name, "pull");
        assert_eq!(spec.mode_name, "pa");
        assert_eq!(spec.lp_iters, 5);
        assert_eq!(spec.bc_sources, Some(3));
        assert!(spec.metrics);
        assert_eq!(spec.id.as_deref(), Some("\"q-1\""));
    }

    #[test]
    fn ids_echo_as_scalars_of_any_type() {
        for (id, rendered) in [
            ("7", "7"),
            ("7.5", "7.5"),
            ("\"a\\\"b\"", "\"a\\\"b\""),
            ("true", "true"),
            ("null", "null"),
        ] {
            let line = format!("{{\"algo\": \"cc\", \"id\": {id}}}");
            match parse_request(&line).unwrap() {
                Request::Run(s) => assert_eq!(s.id.as_deref(), Some(rendered), "{id}"),
                other => panic!("{other:?}"),
            }
        }
        assert!(parse_request(r#"{"algo": "cc", "id": [1]}"#).is_err());
        assert!(parse_request(r#"{"algo": "cc", "id": {"a": 1}}"#).is_err());
    }

    #[test]
    fn meta_ops_parse() {
        assert!(matches!(
            parse_request(r#"{"op": "stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op": "metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            parse_request(r#"{"op": "ping"}"#).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            parse_request(r#"{"op": "shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn malformed_requests_are_messages_not_panics() {
        for bad in [
            "",
            "not json",
            "[1, 2]",
            "\"just a string\"",
            r#"{"op": "run"}"#,
            r#"{"algo": ""}"#,
            r#"{"algo": 3}"#,
            r#"{"algo": "cc", "soruce": 1}"#,
            r#"{"algo": "cc", "source": -1}"#,
            r#"{"algo": "cc", "source": 1.5}"#,
            r#"{"algo": "cc", "source": 5000000000}"#,
            r#"{"algo": "cc", "metrics": "yes"}"#,
            r#"{"algo": "cc", "params": 3}"#,
            r#"{"algo": "cc", "params": {"direction": "sideways"}}"#,
            r#"{"algo": "cc", "params": {"mode": "quantum"}}"#,
            r#"{"algo": "cc", "params": {"bc_souces": 1}}"#,
            r#"{"op": "selfdestruct"}"#,
        ] {
            let e = parse_request(bad);
            assert!(e.is_err(), "{bad:?} parsed: {e:?}");
        }
    }

    #[test]
    fn responses_are_single_line_parseable_json() {
        let err = render_error(Some("42"), KIND_OVERLOADED, "queue full (capacity 2)");
        assert!(!err.contains('\n'));
        let doc = json::parse(&err).unwrap();
        assert_eq!(doc.get("ok").unwrap().bool(), Some(false));
        assert_eq!(doc.get("id").unwrap().u64(), Some(42));
        assert_eq!(
            doc.get("error").unwrap().get("kind").unwrap().str(),
            Some("overloaded")
        );

        let e = RunError::SourceOutOfRange { source: 9, n: 4 };
        let doc = json::parse(&render_run_error(None, &e)).unwrap();
        assert_eq!(
            doc.get("error").unwrap().get("kind").unwrap().str(),
            Some("source_out_of_range")
        );
        assert!(doc
            .get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .str()
            .unwrap()
            .contains("out of range"));

        let doc = json::parse(&render_pong()).unwrap();
        assert_eq!(doc.get("op").unwrap().str(), Some("ping"));
        let doc = json::parse(&render_shutdown_ack()).unwrap();
        assert_eq!(doc.get("draining").unwrap().bool(), Some(true));

        let snap = StatsSnapshot {
            uptime_ns: 5_000_000_000,
            dataset: "g.ppg".to_string(),
            n: 10,
            m: 20,
            workers: 2,
            threads_per_worker: 1,
            queue_capacity: 64,
            queue_depth: 3,
            served: 100,
            rejected: 7,
            errors: 2,
            errors_by_kind: vec![
                ("bad_param".to_string(), 1),
                ("unknown_algo".to_string(), 1),
            ],
            latency_count: 100,
            latency_mean_ns: 1500.5,
            latency_p50_ns: 1023,
            latency_p95_ns: 2047,
            latency_p99_ns: 4095,
            latency_max_ns: 5000,
            window_s: 60.0,
            queue_lat: LatencySummary {
                count: 100,
                mean_ns: 400.0,
                p50_ns: 255,
                p95_ns: 511,
                p99_ns: 511,
                max_ns: 480,
            },
            run_lat: LatencySummary {
                count: 100,
                mean_ns: 1100.5,
                p50_ns: 1023,
                p95_ns: 2047,
                p99_ns: 2047,
                max_ns: 1900,
            },
            window_queue_lat: LatencySummary::default(),
            window_run_lat: LatencySummary::default(),
            per_algo: vec![AlgoStats {
                algo: "bfs".to_string(),
                served: 100,
                errors: 2,
                ..AlgoStats::default()
            }],
            worker_utilization: vec![0.75, 0.5],
            batches: 4,
            coalesced: 11,
            max_batch: 5,
        };
        let rendered = render_stats(&snap);
        assert!(!rendered.contains('\n'));
        let doc = json::parse(&rendered).unwrap();
        assert_eq!(doc.get("served").unwrap().u64(), Some(100));
        assert_eq!(
            doc.get("latency").unwrap().get("p99_ns").unwrap().u64(),
            Some(4095)
        );
        assert_eq!(doc.get("graph").unwrap().get("n").unwrap().u64(), Some(10));
        // The additive PR-8 sections parse and carry the breakdown.
        assert_eq!(doc.get("uptime_s").unwrap().num(), Some(5.0));
        assert_eq!(
            doc.get("errors_by_kind")
                .unwrap()
                .get("bad_param")
                .unwrap()
                .u64(),
            Some(1)
        );
        let breakdown = doc.get("breakdown").unwrap();
        assert_eq!(
            breakdown.get("queue").unwrap().get("p50_ns").unwrap().u64(),
            Some(255)
        );
        assert_eq!(
            breakdown.get("run").unwrap().get("p95_ns").unwrap().u64(),
            Some(2047)
        );
        let window = doc.get("window").unwrap();
        assert_eq!(window.get("seconds").unwrap().num(), Some(60.0));
        assert_eq!(
            window.get("queue").unwrap().get("count").unwrap().u64(),
            Some(0)
        );
        let algos = doc.get("algos").unwrap().arr().unwrap();
        assert_eq!(algos.len(), 1);
        assert_eq!(algos[0].get("algo").unwrap().str(), Some("bfs"));
        assert_eq!(algos[0].get("served").unwrap().u64(), Some(100));
        let util = doc.get("workers_util").unwrap().arr().unwrap();
        assert_eq!(util.len(), 2);
        assert_eq!(util[0].num(), Some(0.75));
        let batching = doc.get("batching").unwrap();
        assert_eq!(batching.get("batches").unwrap().u64(), Some(4));
        assert_eq!(batching.get("coalesced").unwrap().u64(), Some(11));
        assert_eq!(batching.get("max_batch").unwrap().u64(), Some(5));
    }

    #[test]
    fn metrics_response_round_trips_the_prometheus_body() {
        let body = "# TYPE pp_serve_queries_total counter\n\
                    pp_serve_queries_total{algo=\"bfs\",outcome=\"ok\"} 3\n";
        let rendered = render_metrics_response(body);
        assert!(!rendered.contains('\n'));
        let doc = json::parse(&rendered).unwrap();
        assert_eq!(doc.get("ok").unwrap().bool(), Some(true));
        assert_eq!(doc.get("op").unwrap().str(), Some("metrics"));
        assert_eq!(doc.get("format").unwrap().str(), Some("prometheus-text"));
        assert_eq!(doc.get("body").unwrap().str(), Some(body));
    }

    #[test]
    fn latency_summary_reads_a_histogram() {
        let mut h = pp_telemetry::LogHistogram::new();
        for v in [100, 200, 400, 800] {
            h.record(v);
        }
        let s = LatencySummary::from(&h);
        assert_eq!(s.count, 4);
        assert_eq!(s.max_ns, 800);
        assert!(s.mean_ns > 0.0);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        let rendered = s.render();
        let doc = json::parse(&rendered).unwrap();
        assert_eq!(doc.get("count").unwrap().u64(), Some(4));
        assert_eq!(doc.get("max_ns").unwrap().u64(), Some(800));
    }
}
