//! A minimal JSON reader (and string escaper) for the workspace's
//! hand-rolled JSON surfaces.
//!
//! The workspace writes JSON by hand (no serde in the dependency-free
//! build); two consumers need to read it back: `ppgraph report` re-reads
//! the metrics files the harness wrote itself, and — since the serve
//! subsystem landed — [`crate::protocol`] parses **untrusted query input**
//! arriving over a socket. This module is the shared reader: a small
//! recursive-descent parser into a [`Value`] tree plus the handful of
//! typed accessors the consumers use. It parses standard JSON (RFC 8259)
//! — objects, arrays, strings with escapes (including `\uXXXX`), numbers
//! in integer/fraction/exponent form, booleans, null — and nothing more
//! (no comments, no trailing commas). Malformed input yields a
//! [`ParseError`] with a byte offset, never a panic: a bad query line must
//! turn into a structured `bad_request` response, not kill the server.
//!
//! This module lived in `pp-bench` before the serve subsystem; `pp-bench`
//! re-exports it (`pp_bench::json`) so existing paths keep working.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the harness's integers fit f64 exactly: they are
    /// counts and nanosecond spans well under 2⁵³).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (BTreeMap), which is fine for
    /// a reader.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements (`None` for non-arrays).
    pub fn arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload (`None` for non-strings).
    pub fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`None` for non-numbers).
    pub fn num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, truncating (`None` for non-numbers and
    /// negatives).
    pub fn u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload (`None` for non-booleans).
    pub fn bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Minimal JSON string escaping for the workspace's hand-rolled writers:
/// quotes, backslashes, and control bytes (everything RFC 8259 §7 requires
/// to be escaped). Non-ASCII characters pass through unescaped — the
/// output is UTF-8 JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What the parser expected.
    pub expected: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, expected: &'static str) -> ParseError {
        ParseError {
            expected,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(expected))
        }
    }

    fn eat_lit(&mut self, lit: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(lit))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "'{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("escape character"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("4 hex digits"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in the harness's
                            // ASCII-escaped output; map lone surrogates to
                            // U+FFFD rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("a number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().arr().unwrap()[2]
                .get("b")
                .unwrap()
                .str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("1 2").is_err(), "trailing content");
        assert!(parse("'single'").is_err());
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse("3").unwrap();
        assert_eq!(v.num(), Some(3.0));
        assert_eq!(v.u64(), Some(3));
        assert_eq!(v.str(), None);
        assert_eq!(v.arr(), None);
        assert_eq!(parse("-2").unwrap().u64(), None);
        assert_eq!(parse("true").unwrap().bool(), Some(true));
    }

    // ------------------------------------------------------------------
    // Untrusted-input edge cases: the parser now sits behind the serve
    // protocol, so inputs nobody in the workspace would *write* must still
    // parse (or fail) cleanly.

    #[test]
    fn escaped_quotes_and_unicode_in_strings() {
        // Escaped quote adjacent to an escaped backslash — the classic
        // `\\"` ambiguity: the backslash escape must consume its pair
        // before the quote is considered.
        assert_eq!(parse(r#""a\\\"b""#).unwrap().str(), Some(r#"a\"b"#));
        assert_eq!(parse(r#""\\\\""#).unwrap().str(), Some(r"\\"));
        // \u escapes: BMP characters, and raw (unescaped) multi-byte UTF-8.
        assert_eq!(parse(r#""éЖ""#).unwrap().str(), Some("éЖ"));
        assert_eq!(
            parse("\"héllo → wörld\"").unwrap().str(),
            Some("héllo → wörld")
        );
        // A key containing escapes still indexes correctly.
        let v = parse(r#"{"a\"b": 1}"#).unwrap();
        assert_eq!(v.get("a\"b").and_then(Value::u64), Some(1));
        // Lone surrogates map to U+FFFD rather than erroring or panicking.
        assert_eq!(parse(r#""\ud800""#).unwrap().str(), Some("\u{fffd}"));
        // Truncated escapes are errors, not panics.
        assert!(parse(r#""\u12"#).is_err());
        assert!(parse(r#""\"#).is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    #[test]
    fn nested_arrays_of_objects() {
        let v = parse(
            r#"[{"rows": [{"a": 1}, {"a": 2}]},
                {"rows": []},
                {"rows": [{"b": [[1], [2, 3]]}]}]"#,
        )
        .unwrap();
        let outer = v.arr().unwrap();
        assert_eq!(outer.len(), 3);
        assert_eq!(outer[0].get("rows").unwrap().arr().unwrap().len(), 2);
        assert_eq!(
            outer[0].get("rows").unwrap().arr().unwrap()[1]
                .get("a")
                .and_then(Value::u64),
            Some(2)
        );
        assert_eq!(outer[1].get("rows").unwrap().arr(), Some(&[][..]));
        let deep = outer[2].get("rows").unwrap().arr().unwrap()[0]
            .get("b")
            .unwrap();
        assert_eq!(deep.arr().unwrap()[1].arr().unwrap().len(), 2);
        // Unbalanced nesting fails with an offset, not a panic.
        assert!(parse(r#"[{"rows": [{"a": 1}]}"#).is_err());
    }

    #[test]
    fn exponent_form_numbers() {
        assert_eq!(parse("1e3").unwrap().num(), Some(1000.0));
        assert_eq!(parse("1E3").unwrap().num(), Some(1000.0));
        assert_eq!(parse("2.5e-2").unwrap().num(), Some(0.025));
        assert_eq!(parse("-3e+4").unwrap().num(), Some(-30000.0));
        assert_eq!(parse("0.0e0").unwrap().num(), Some(0.0));
        // u64 view truncates exponent-form values the same as plain ones.
        assert_eq!(parse("1e3").unwrap().u64(), Some(1000));
        // Degenerate exponents must not parse as two tokens.
        assert!(parse("1e").is_err());
        assert!(parse("1e+").is_err());
        assert!(parse("e3").is_err());
        // Huge exponents saturate to infinity in f64 — accepted by the
        // grammar; consumers see a number, not a hang or panic.
        assert_eq!(parse("1e999").unwrap().num(), Some(f64::INFINITY));
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        for s in ["plain", "a\"b\\c", "x\ny\t", "\u{1}\u{1f}", "héllo"] {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(parse(&doc).unwrap().str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn round_trips_the_trace_writer() {
        let mut t = pp_telemetry::ChromeTrace::new();
        t.name_track(0, "rounds");
        t.duration("round 0", "round", 0, 0, 1_000, vec![]);
        let v = parse(&t.to_json()).unwrap();
        let events = v.arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().str(), Some("M"));
        assert_eq!(events[1].get("dur").unwrap().num(), Some(1.0));
    }
}
