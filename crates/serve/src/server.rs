//! The resident query service: one hot graph, a bounded admission queue,
//! and a pool of worker runners draining it through
//! [`pp_engine::registry`].
//!
//! ## Anatomy
//!
//! ```text
//!             reader threads (1/conn or stdio)            worker runners
//!  NDJSON ──▶ parse_request ──▶ admission queue (bounded) ──▶ registry::run_checked
//!     │            │                  │ full?                      │
//!     │            └── bad_request ◀──┴── overloaded               └──▶ response line
//!     └── EOF / {"op":"shutdown"} → close queue → drain → join
//! ```
//!
//! * **Admission control** — the queue holds at most `queue` jobs
//!   ([`ServeConfig::queue`]). A query arriving while it is full gets an
//!   immediate structured `overloaded` rejection from the reader thread;
//!   nothing buffers without bound and the reader never blocks on the
//!   runners.
//! * **Worker runners** — each worker owns its own [`Engine`] (pool of
//!   [`ServeConfig::threads`] threads) and probe shards, so concurrent
//!   queries never share a round loop; the graph itself is shared
//!   read-only. Digests are identical to a direct [`registry`] run of the
//!   same config on an engine of the same thread count.
//! * **Latency accounting** — every completed query stamps three clocks
//!   (admission, dequeue, completion) and records the decomposition
//!   `queue_ns + run_ns == latency_ns` — the same clock readings feed all
//!   three, so the identity is exact — into per-`{algo, outcome}`
//!   [`pp_telemetry::MetricsRegistry`] histograms (windowed: every series
//!   answers both "since boot" and "last 60 s"). The `stats` meta-query
//!   reports the split alongside the PR-7 end-to-end percentiles; the
//!   `metrics` meta-query returns the whole registry as Prometheus text
//!   exposition.
//! * **Per-query tracing** — with [`ServeConfig::trace_queries`] set, each
//!   query contributes a queue-wait async span (the admission lane, where
//!   overlapping waits get sub-rows) and a run span on its worker's lane;
//!   overload rejections appear as instants. The stitched
//!   [`pp_telemetry::ChromeTrace`] is written when the serve loop drains.
//! * **Query coalescing** — when a worker claims work it takes the front
//!   job *and*, if that job is a batchable single-source query (`bfs` and
//!   its aliases) with an in-range source, up to
//!   [`pp_engine::algo::msbfs::MAX_LANES`]` - 1` queued queries that share
//!   its execution config (direction/mode/metrics), wherever they sit in
//!   the queue — all under one lock acquisition. The batch runs as one
//!   bit-parallel multi-source traversal
//!   ([`registry::run_bfs_sliced`]) and each query is answered with its
//!   own `id` and a per-source summary bit-equal to running alone; the
//!   only visible difference is the additive `batched` response field (the
//!   batch size) and a shared `run_ns`. Admission control stays per-query.
//!   Batch sizes feed the [`M_BATCH_SIZE`] histogram and the
//!   [`M_COALESCED`] counter.
//! * **Graceful shutdown** — EOF (stdio transport) or a `shutdown` request
//!   (any transport) closes the queue: admitted queries still execute and
//!   answer, new ones are refused as `shutting_down`, and the serve loop
//!   returns the final [`StatsSnapshot`] once the workers drain.
//!
//! [`registry`]: pp_engine::registry

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pp_engine::algo::msbfs::MAX_LANES;
use pp_engine::registry::{self, RunConfig};
use pp_engine::{Engine, ProbeShards};
use pp_graph::{CsrGraph, VertexId};
use pp_telemetry::timing::Clock;
use pp_telemetry::trace::ArgValue;
use pp_telemetry::{ChromeTrace, Labels, LogHistogram, MetricsLevel, MetricsRegistry, NullProbe};

use crate::protocol::{
    self, parse_request, AlgoStats, LatencySplit, LatencySummary, QuerySpec, Request,
    StatsSnapshot, KIND_BAD_REQUEST, KIND_OVERLOADED, KIND_SHUTTING_DOWN,
};

/// Run queries by algorithm and outcome (`ok`/`error`/`rejected`); sums to
/// every run request ever received.
pub const M_QUERIES: &str = "pp_serve_queries_total";
/// Admission→dequeue wait, per `{algo, outcome}` (ns).
pub const M_QUEUE_NS: &str = "pp_serve_queue_ns";
/// Dequeue→completion execution time, per `{algo, outcome}` (ns).
pub const M_RUN_NS: &str = "pp_serve_run_ns";
/// Jobs waiting in the admission queue (sampled at dequeue and at render).
pub const M_QUEUE_DEPTH: &str = "pp_serve_queue_depth";
/// Share of wall-clock each worker runner spent executing queries.
pub const M_WORKER_UTIL: &str = "pp_serve_worker_utilization";
/// Seconds since the graph went resident.
pub const M_UPTIME: &str = "pp_serve_uptime_seconds";
/// Admission queue capacity (constant over a server's life).
pub const M_QUEUE_CAP: &str = "pp_serve_queue_capacity";
/// Vertices in the resident graph.
pub const M_GRAPH_N: &str = "pp_serve_graph_vertices";
/// Edges in the resident graph.
pub const M_GRAPH_M: &str = "pp_serve_graph_edges";
/// Queries per coalesced batched run (histogram; only batches of ≥ 2
/// queries are recorded — solo runs are the baseline, not a batch).
pub const M_BATCH_SIZE: &str = "pp_serve_batch_size";
/// Queries answered through a shared batched run (each query counts once).
pub const M_COALESCED: &str = "pp_serve_coalesced_total";

/// Trace lane for admission events (queue-wait spans, rejection instants).
const TID_ADMISSION: u32 = 0;
/// Worker `w` runs on trace lane `TID_WORKER_BASE + w`.
const TID_WORKER_BASE: u32 = 1;

/// The `algo` label value for a query: the registry's canonical name when
/// the request named a real algorithm (aliases collapse — `pr` and
/// `pagerank` are one series), the raw string otherwise (so `unknown_algo`
/// rejections stay attributable).
fn algo_label(requested: &str) -> String {
    registry::find(requested)
        .map(|spec| spec.name.to_string())
        .unwrap_or_else(|| requested.to_string())
}

/// Server knobs. `Default` is sized for the 2-core CI box: two worker
/// runners of one engine thread each and a 64-deep admission queue.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker runners executing queries concurrently (min 1).
    pub workers: usize,
    /// Engine threads per worker runner (min 1). `workers × threads`
    /// should not exceed the machine's cores by much — each worker owns a
    /// full engine pool.
    pub threads: usize,
    /// Admission queue capacity (min 1): queries beyond
    /// `workers + queue` in flight are rejected as `overloaded`.
    pub queue: usize,
    /// Dataset label echoed into response rows (snapshot path).
    pub name: String,
    /// Ring slots per windowed histogram series (min 1). With
    /// [`ServeConfig::window_bucket_ns`] this sets how far back the
    /// "last N seconds" half of every latency series reaches; the default
    /// pair is 60 × 1 s.
    pub window_buckets: usize,
    /// Width of one window ring slot in nanoseconds (min 1).
    pub window_bucket_ns: u64,
    /// When set, collect a per-query Chrome trace (queue span + run span
    /// per served query, rejection instants) and write it to this path as
    /// the serve loop drains.
    pub trace_queries: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            threads: 1,
            queue: 64,
            name: "<graph>".to_string(),
            window_buckets: 60,
            window_bucket_ns: 1_000_000_000,
            trace_queries: None,
        }
    }
}

/// A sink responses are written to: shared because the worker that
/// finishes a query writes to the same stream the reader thread rejects
/// on. One response line per `write_line` call, flushed — NDJSON framing
/// over TCP needs the flush.
type Out = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_line(out: &Out, line: &str) {
    let mut w = out.lock().unwrap();
    // A vanished client (broken pipe) must not kill the server; its
    // remaining in-flight responses just go nowhere.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// One admitted query: what to run, where to answer, when it was admitted,
/// and its server-wide sequence number (the trace correlation id).
struct Job {
    spec: QuerySpec,
    out: Out,
    admitted_ns: u64,
    seq: u64,
}

/// The bounded admission queue: `try_push` never blocks (that is the
/// point), `pop` blocks until a job or close-and-empty.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    capacity: usize,
    closed: bool,
}

/// Why a push was refused.
enum PushError {
    Full,
    Closed,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut q = self.inner.lock().unwrap();
        if q.closed {
            return Err(PushError::Closed);
        }
        if q.jobs.len() >= q.capacity {
            return Err(PushError::Full);
        }
        q.jobs.push_back(job);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job and coalesces compatible queued queries
    /// behind it: if the front job satisfies `batchable`, up to `max - 1`
    /// other queued jobs that are batchable *and* share its execution
    /// config (direction, mode, metrics, algorithm knobs) are removed from
    /// the queue — wherever they sit; non-matching jobs keep their relative
    /// order — and returned with it, all under one lock acquisition (no
    /// waiting for more load: a batch is only what has already queued).
    /// The returned batch has length ≥ 1. `None` once closed *and*
    /// drained.
    fn pop_batch(&self, max: usize, batchable: impl Fn(&QuerySpec) -> bool) -> Option<Vec<Job>> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(first) = q.jobs.pop_front() {
                let mut batch = vec![first];
                if max > 1 && batchable(&batch[0].spec) {
                    let head = batch[0].spec.clone();
                    let mut i = 0;
                    while i < q.jobs.len() && batch.len() < max {
                        let s = &q.jobs[i].spec;
                        if batchable(s)
                            && s.policy_name == head.policy_name
                            && s.mode_name == head.mode_name
                            && s.metrics == head.metrics
                            && s.lp_iters == head.lp_iters
                            && s.bc_sources == head.bc_sources
                        {
                            batch.push(q.jobs.remove(i).unwrap());
                        } else {
                            i += 1;
                        }
                    }
                }
                return Some(batch);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    fn depth(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// State shared between reader threads, worker runners, and the accept
/// loop.
struct Core {
    graph: Arc<CsrGraph>,
    cfg: ServeConfig,
    queue: JobQueue,
    clock: Clock,
    served: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    latency: Mutex<LogHistogram>,
    /// Labeled service series: query counters, queue/run histograms,
    /// depth/utilization gauges — everything `metrics` exposes.
    metrics: MetricsRegistry,
    /// Structured-error tally by [`registry::RunError::kind`] tag. A
    /// `Mutex<BTreeMap>` is fine: the error path is cold.
    errors_by_kind: Mutex<BTreeMap<String, u64>>,
    /// Nanoseconds each worker runner has spent executing queries.
    worker_busy_ns: Vec<AtomicU64>,
    /// Per-query trace events; `Some` iff `cfg.trace_queries` is set.
    trace: Option<Mutex<ChromeTrace>>,
    /// Monotonic query sequence — trace span correlation ids.
    seq: AtomicU64,
    stop: AtomicBool,
    /// Coalesced batched runs executed (each covered ≥ 2 queries).
    batches: AtomicU64,
    /// Queries answered through a shared batched run.
    coalesced: AtomicU64,
    /// Largest batch executed so far (queries per run).
    max_batch: AtomicU64,
}

/// Whether a query can join a coalesced batch: a batchable registry
/// algorithm (`bfs` and its aliases) with an in-range source. Out-of-range
/// sources are left to run solo so their structured error cannot poison a
/// batch that would otherwise validate.
fn coalescable(spec: &QuerySpec, n: usize) -> bool {
    registry::find(&spec.algo).is_some_and(|s| s.batched) && (spec.source as usize) < n
}

impl Core {
    fn snapshot(&self) -> StatsSnapshot {
        let now_ns = self.clock.now_ns();
        let queue_split = self.metrics.histogram_merged(M_QUEUE_NS, now_ns, |_| true);
        let run_split = self.metrics.histogram_merged(M_RUN_NS, now_ns, |_| true);
        let mut per_algo = Vec::new();
        for algo in self.metrics.label_values(M_QUERIES, "algo") {
            let outcome = |o: &str| {
                let labels = Labels::new([("algo", algo.as_str()), ("outcome", o)]);
                self.metrics.counter_value(M_QUERIES, &labels).unwrap_or(0)
            };
            let of_algo = |l: &Labels| {
                l.pairs()
                    .iter()
                    .any(|(k, v)| k == "algo" && v == algo.as_str())
            };
            let q = self.metrics.histogram_merged(M_QUEUE_NS, now_ns, of_algo);
            let r = self.metrics.histogram_merged(M_RUN_NS, now_ns, of_algo);
            per_algo.push(AlgoStats {
                algo: algo.clone(),
                served: outcome("ok"),
                errors: outcome("error"),
                queue: LatencySummary::from(&q.total),
                run: LatencySummary::from(&r.total),
                window_queue: LatencySummary::from(&q.windowed),
                window_run: LatencySummary::from(&r.windowed),
            });
        }
        // ORDERING: Relaxed throughout the snapshot — these are monotonic
        // statistics counters read for reporting; a reading that trails a
        // concurrent bump by one is an acceptable snapshot.
        let worker_utilization = self
            .worker_busy_ns
            .iter()
            .map(|busy| (busy.load(Ordering::Relaxed) as f64 / now_ns.max(1) as f64).min(1.0))
            .collect();
        let lat = self.latency.lock().unwrap();
        StatsSnapshot {
            uptime_ns: now_ns,
            dataset: self.cfg.name.clone(),
            n: self.graph.num_vertices(),
            m: self.graph.num_edges(),
            workers: self.cfg.workers,
            threads_per_worker: self.cfg.threads,
            queue_capacity: self.cfg.queue,
            queue_depth: self.queue.depth(),
            // ORDERING: Relaxed — same snapshot discipline as above.
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            errors_by_kind: self
                .errors_by_kind
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            latency_count: lat.count(),
            latency_mean_ns: lat.mean(),
            latency_p50_ns: lat.p50(),
            latency_p95_ns: lat.p95(),
            latency_p99_ns: lat.p99(),
            latency_max_ns: lat.max(),
            window_s: self.metrics.window_ns() as f64 / 1e9,
            queue_lat: LatencySummary::from(&queue_split.total),
            run_lat: LatencySummary::from(&run_split.total),
            window_queue_lat: LatencySummary::from(&queue_split.windowed),
            window_run_lat: LatencySummary::from(&run_split.windowed),
            per_algo,
            worker_utilization,
            // ORDERING: Relaxed — same snapshot discipline as above.
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    /// Refreshes the point-in-time gauges and renders the whole registry
    /// as Prometheus text exposition (the `metrics` meta-query body).
    fn render_prometheus(&self) -> String {
        let now_ns = self.clock.now_ns();
        let none = Labels::none();
        self.metrics.set_gauge(
            M_UPTIME,
            "Seconds since the graph went resident.",
            &none,
            now_ns as f64 / 1e9,
        );
        self.metrics.set_gauge(
            M_QUEUE_CAP,
            "Admission queue capacity.",
            &none,
            self.cfg.queue as f64,
        );
        self.metrics.set_gauge(
            M_QUEUE_DEPTH,
            "Jobs waiting in the admission queue.",
            &none,
            self.queue.depth() as f64,
        );
        self.metrics.set_gauge(
            M_GRAPH_N,
            "Vertices in the resident graph.",
            &none,
            self.graph.num_vertices() as f64,
        );
        self.metrics.set_gauge(
            M_GRAPH_M,
            "Edges in the resident graph.",
            &none,
            self.graph.num_edges() as f64,
        );
        for (w, busy) in self.worker_busy_ns.iter().enumerate() {
            // ORDERING: Relaxed — statistics read for a gauge; a reading
            // that trails a concurrent bump by one is acceptable.
            let util = (busy.load(Ordering::Relaxed) as f64 / now_ns.max(1) as f64).min(1.0);
            self.metrics.set_gauge(
                M_WORKER_UTIL,
                "Share of wall-clock each worker runner spent executing queries.",
                &Labels::new([("worker", w.to_string())]),
                util,
            );
        }
        self.metrics.render_prometheus(now_ns)
    }

    /// Counts one run request into the per-`{algo, outcome}` counter.
    fn count_query(&self, algo: &str, outcome: &str) {
        self.metrics.inc_counter(
            M_QUERIES,
            "Run queries by algorithm and outcome (ok/error/rejected).",
            &Labels::new([("algo", algo), ("outcome", outcome)]),
            1,
        );
    }

    /// Parses and routes one input line. Meta-queries answer inline from
    /// the reader thread (they must work even when the runners are
    /// saturated — that is when you need `stats` most); run queries go
    /// through admission.
    fn dispatch_line(self: &Arc<Self>, line: &str, out: &Out) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        match parse_request(line) {
            Err(msg) => write_line(out, &protocol::render_error(None, KIND_BAD_REQUEST, &msg)),
            Ok(Request::Ping) => write_line(out, &protocol::render_pong()),
            Ok(Request::Stats) => write_line(out, &protocol::render_stats(&self.snapshot())),
            Ok(Request::Metrics) => write_line(
                out,
                &protocol::render_metrics_response(&self.render_prometheus()),
            ),
            Ok(Request::Shutdown) => {
                write_line(out, &protocol::render_shutdown_ack());
                // ORDERING: Relaxed — `stop` is an independent latch that
                // readers poll; no data is published through it. Workers
                // synchronize through `queue.close()` below, and reader
                // loops only need to observe the latch eventually.
                self.stop.store(true, Ordering::Relaxed);
                self.queue.close();
            }
            Ok(Request::Run(spec)) => {
                let id = spec.id.clone();
                let algo = algo_label(&spec.algo);
                let job = Job {
                    spec,
                    out: out.clone(),
                    admitted_ns: self.clock.now_ns(),
                    // ORDERING: Relaxed — the fetch_add itself guarantees
                    // unique ids; nothing is published through `seq`.
                    seq: self.seq.fetch_add(1, Ordering::Relaxed),
                };
                let rejected_ns = job.admitted_ns;
                let seq = job.seq;
                match self.queue.try_push(job) {
                    Ok(()) => {}
                    Err(PushError::Full) => {
                        // ORDERING: Relaxed — statistics counter.
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        self.count_query(&algo, "rejected");
                        self.trace_rejection(&algo, seq, rejected_ns);
                        write_line(
                            out,
                            &protocol::render_error(
                                id.as_deref(),
                                KIND_OVERLOADED,
                                &format!("admission queue full (capacity {})", self.cfg.queue),
                            ),
                        );
                    }
                    Err(PushError::Closed) => {
                        // ORDERING: Relaxed — statistics counter.
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        self.count_query(&algo, "rejected");
                        self.trace_rejection(&algo, seq, rejected_ns);
                        write_line(
                            out,
                            &protocol::render_error(
                                id.as_deref(),
                                KIND_SHUTTING_DOWN,
                                "server is draining; no new queries",
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Records an overload/drain rejection on the admission trace lane.
    fn trace_rejection(&self, algo: &str, seq: u64, ts_ns: u64) {
        if let Some(trace) = &self.trace {
            trace.lock().unwrap().instant(
                format!("rejected {algo}"),
                "admission",
                TID_ADMISSION,
                ts_ns,
                vec![
                    ("algo".to_string(), ArgValue::from(algo)),
                    ("query".to_string(), ArgValue::from(seq)),
                ],
            );
        }
    }

    /// Executes one admitted job on worker `worker`'s engine and answers
    /// it, stamping the queue/run latency decomposition.
    fn execute(&self, worker: usize, engine: &Engine, probes: &ProbeShards<NullProbe>, job: Job) {
        let Job {
            spec,
            out,
            admitted_ns,
            seq,
        } = job;
        let dequeued_ns = self.clock.now_ns();
        let queue_ns = dequeued_ns.saturating_sub(admitted_ns);
        // The depth gauge samples at dequeue: the moment load is visible.
        self.metrics.set_gauge(
            M_QUEUE_DEPTH,
            "Jobs waiting in the admission queue.",
            &Labels::none(),
            self.queue.depth() as f64,
        );
        let cfg = RunConfig {
            policy: spec.policy,
            mode: spec.mode,
            collect: if spec.metrics {
                MetricsLevel::Timing
            } else {
                MetricsLevel::Off
            },
            source: spec.source,
            lp_iters: spec.lp_iters,
            bc_sources: spec.bc_sources,
            ..RunConfig::new(engine, probes)
        };
        let result = registry::run_checked(&spec.algo, &cfg, &self.graph);
        let done_ns = self.clock.now_ns();
        // All three figures come from the same two clock readings, so the
        // decomposition is exact: queue_ns + run_ns == latency_ns.
        let run_ns = done_ns.saturating_sub(dequeued_ns);
        let latency_ns = queue_ns + run_ns;
        let ms = run_ns as f64 / 1e6;
        let algo = algo_label(&spec.algo);
        let outcome = if result.is_ok() { "ok" } else { "error" };
        self.count_query(&algo, outcome);
        let labels = Labels::new([("algo", algo.as_str()), ("outcome", outcome)]);
        self.metrics.observe(
            M_QUEUE_NS,
            "Admission-to-dequeue wait in nanoseconds.",
            &labels,
            done_ns,
            queue_ns,
        );
        self.metrics.observe(
            M_RUN_NS,
            "Dequeue-to-completion execution time in nanoseconds.",
            &labels,
            done_ns,
            run_ns,
        );
        let busy = &self.worker_busy_ns[worker];
        // ORDERING: Relaxed — per-worker statistics accumulator; only
        // this worker writes it, others read it for gauges.
        let busy_ns = busy.fetch_add(run_ns, Ordering::Relaxed) + run_ns;
        self.metrics.set_gauge(
            M_WORKER_UTIL,
            "Share of wall-clock each worker runner spent executing queries.",
            &Labels::new([("worker", worker.to_string())]),
            (busy_ns as f64 / done_ns.max(1) as f64).min(1.0),
        );
        if let Some(trace) = &self.trace {
            let mut t = trace.lock().unwrap();
            let wait = format!("queue {algo}");
            t.async_begin(
                wait.clone(),
                "queue",
                TID_ADMISSION,
                admitted_ns,
                seq,
                vec![
                    ("algo".to_string(), ArgValue::from(algo.as_str())),
                    ("query".to_string(), ArgValue::from(seq)),
                ],
            );
            t.async_end(wait, "queue", TID_ADMISSION, dequeued_ns, seq);
            let mut run_args = vec![
                ("algo".to_string(), ArgValue::from(algo.as_str())),
                ("outcome".to_string(), ArgValue::from(outcome)),
                ("query".to_string(), ArgValue::from(seq)),
                ("queue_ns".to_string(), ArgValue::from(queue_ns)),
            ];
            if let Some(id) = &spec.id {
                // The client's raw id scalar: lets a trace consumer join
                // spans back to response lines exactly.
                run_args.push(("id".to_string(), ArgValue::from(id.as_str())));
            }
            t.duration(
                format!("run {algo}"),
                "run",
                TID_WORKER_BASE + worker as u32,
                dequeued_ns,
                run_ns,
                run_args,
            );
        }
        let line = match &result {
            Ok(run) => {
                // ORDERING: Relaxed — statistics counter.
                self.served.fetch_add(1, Ordering::Relaxed);
                self.latency.lock().unwrap().record(latency_ns);
                protocol::render_run_response(
                    &spec,
                    &self.cfg.name,
                    engine.threads(),
                    run,
                    ms,
                    LatencySplit {
                        queue_ns,
                        run_ns,
                        latency_ns,
                        worker,
                        batched: 1,
                    },
                )
            }
            Err(e) => {
                // ORDERING: Relaxed — statistics counter.
                self.errors.fetch_add(1, Ordering::Relaxed);
                *self
                    .errors_by_kind
                    .lock()
                    .unwrap()
                    .entry(e.kind().to_string())
                    .or_insert(0) += 1;
                protocol::render_run_error(spec.id.as_deref(), e)
            }
        };
        write_line(&out, &line);
    }

    /// Executes a claimed batch. A batch of one takes the plain
    /// [`Core::execute`] path byte-for-byte; a real batch runs one
    /// bit-parallel multi-source traversal through
    /// [`registry::run_bfs_sliced`] and answers every query from its own
    /// lane's slice — per-query `queue_ns` from its own admission stamp,
    /// shared `run_ns`, and the batch size in the `batched` field.
    fn execute_batch(
        &self,
        worker: usize,
        engine: &Engine,
        probes: &ProbeShards<NullProbe>,
        mut jobs: Vec<Job>,
    ) {
        if jobs.len() == 1 {
            return self.execute(worker, engine, probes, jobs.pop().unwrap());
        }
        let batch = jobs.len();
        let dequeued_ns = self.clock.now_ns();
        // The depth gauge samples at dequeue: the moment load is visible.
        self.metrics.set_gauge(
            M_QUEUE_DEPTH,
            "Jobs waiting in the admission queue.",
            &Labels::none(),
            self.queue.depth() as f64,
        );
        let sources: Vec<VertexId> = jobs.iter().map(|j| j.spec.source).collect();
        let head = &jobs[0].spec;
        let cfg = RunConfig {
            policy: head.policy,
            mode: head.mode,
            collect: if head.metrics {
                MetricsLevel::Timing
            } else {
                MetricsLevel::Off
            },
            sources,
            lp_iters: head.lp_iters,
            bc_sources: head.bc_sources,
            ..RunConfig::new(engine, probes)
        };
        let result = registry::run_bfs_sliced(&cfg, &self.graph);
        let done_ns = self.clock.now_ns();
        let run_ns = done_ns.saturating_sub(dequeued_ns);
        let ms = run_ns as f64 / 1e6;
        // One traversal ran, so the worker was busy for `run_ns` once —
        // not once per answered query.
        let busy = &self.worker_busy_ns[worker];
        // ORDERING: Relaxed — per-worker statistics accumulator; only
        // this worker writes it, others read it for gauges.
        let busy_ns = busy.fetch_add(run_ns, Ordering::Relaxed) + run_ns;
        self.metrics.set_gauge(
            M_WORKER_UTIL,
            "Share of wall-clock each worker runner spent executing queries.",
            &Labels::new([("worker", worker.to_string())]),
            (busy_ns as f64 / done_ns.max(1) as f64).min(1.0),
        );
        let outcome = if result.is_ok() { "ok" } else { "error" };
        if result.is_ok() {
            // ORDERING: Relaxed — statistics counters.
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.coalesced.fetch_add(batch as u64, Ordering::Relaxed);
            self.max_batch.fetch_max(batch as u64, Ordering::Relaxed);
            self.metrics.observe(
                M_BATCH_SIZE,
                "Queries per coalesced batched run.",
                &Labels::none(),
                done_ns,
                batch as u64,
            );
            self.metrics.inc_counter(
                M_COALESCED,
                "Queries answered through a shared batched run.",
                &Labels::none(),
                batch as u64,
            );
        }
        if let Some(trace) = &self.trace {
            let mut t = trace.lock().unwrap();
            // One queue span AND one run span per query — the trace
            // invariant consumers rely on survives batching. The run spans
            // of one batch share the same interval on the worker lane;
            // their `batched` arg says why they overlap.
            for job in &jobs {
                let algo = algo_label(&job.spec.algo);
                let wait = format!("queue {algo}");
                t.async_begin(
                    wait.clone(),
                    "queue",
                    TID_ADMISSION,
                    job.admitted_ns,
                    job.seq,
                    vec![
                        ("algo".to_string(), ArgValue::from(algo.as_str())),
                        ("query".to_string(), ArgValue::from(job.seq)),
                    ],
                );
                t.async_end(wait, "queue", TID_ADMISSION, dequeued_ns, job.seq);
                let queue_ns = dequeued_ns.saturating_sub(job.admitted_ns);
                let mut run_args = vec![
                    ("algo".to_string(), ArgValue::from(algo.as_str())),
                    ("outcome".to_string(), ArgValue::from(outcome)),
                    ("query".to_string(), ArgValue::from(job.seq)),
                    ("queue_ns".to_string(), ArgValue::from(queue_ns)),
                    ("batched".to_string(), ArgValue::from(batch as u64)),
                ];
                if let Some(id) = &job.spec.id {
                    run_args.push(("id".to_string(), ArgValue::from(id.as_str())));
                }
                t.duration(
                    format!("run {algo} ×{batch}"),
                    "run",
                    TID_WORKER_BASE + worker as u32,
                    dequeued_ns,
                    run_ns,
                    run_args,
                );
            }
        }
        // One slice per job, in claim order (`run_bfs_sliced` returns one
        // run per configured source in input order).
        for (i, job) in jobs.iter().enumerate() {
            let queue_ns = dequeued_ns.saturating_sub(job.admitted_ns);
            let latency_ns = queue_ns + run_ns;
            let algo = algo_label(&job.spec.algo);
            self.count_query(&algo, outcome);
            let labels = Labels::new([("algo", algo.as_str()), ("outcome", outcome)]);
            self.metrics.observe(
                M_QUEUE_NS,
                "Admission-to-dequeue wait in nanoseconds.",
                &labels,
                done_ns,
                queue_ns,
            );
            self.metrics.observe(
                M_RUN_NS,
                "Dequeue-to-completion execution time in nanoseconds.",
                &labels,
                done_ns,
                run_ns,
            );
            let line = match &result {
                Ok(runs) => {
                    // ORDERING: Relaxed — statistics counter.
                    self.served.fetch_add(1, Ordering::Relaxed);
                    self.latency.lock().unwrap().record(latency_ns);
                    protocol::render_run_response(
                        &job.spec,
                        &self.cfg.name,
                        engine.threads(),
                        &runs[i],
                        ms,
                        LatencySplit {
                            queue_ns,
                            run_ns,
                            latency_ns,
                            worker,
                            batched: batch,
                        },
                    )
                }
                Err(e) => {
                    // ORDERING: Relaxed — statistics counter.
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    *self
                        .errors_by_kind
                        .lock()
                        .unwrap()
                        .entry(e.kind().to_string())
                        .or_insert(0) += 1;
                    protocol::render_run_error(job.spec.id.as_deref(), e)
                }
            };
            write_line(&job.out, &line);
        }
    }
}

/// A running server: workers are live from [`Server::new`] on; feed it a
/// transport with [`Server::serve_lines`] or [`Server::serve_tcp`].
pub struct Server {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads `graph` resident and spawns the worker runners. The graph is
    /// read-only from here on; queries needing weights fail structurally
    /// if it has none (attach weights before constructing — see
    /// `ppgraph serve --weights`).
    pub fn new(graph: CsrGraph, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            threads: cfg.threads.max(1),
            queue: cfg.queue.max(1),
            window_buckets: cfg.window_buckets.max(1),
            window_bucket_ns: cfg.window_bucket_ns.max(1),
            ..cfg
        };
        let trace = cfg.trace_queries.as_ref().map(|_| {
            let mut t = ChromeTrace::new();
            t.name_track(TID_ADMISSION, "admission");
            for w in 0..cfg.workers {
                t.name_track(TID_WORKER_BASE + w as u32, format!("worker {w}"));
            }
            Mutex::new(t)
        });
        let core = Arc::new(Core {
            graph: Arc::new(graph),
            cfg: cfg.clone(),
            queue: JobQueue::new(cfg.queue),
            clock: Clock::start(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Mutex::new(LogHistogram::new()),
            metrics: MetricsRegistry::new(cfg.window_buckets, cfg.window_bucket_ns),
            errors_by_kind: Mutex::new(BTreeMap::new()),
            worker_busy_ns: (0..cfg.workers).map(|_| AtomicU64::new(0)).collect(),
            trace,
            seq: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let core = core.clone();
                std::thread::Builder::new()
                    .name(format!("pp-serve-worker-{w}"))
                    .spawn(move || {
                        // Each worker owns an engine pool for its whole
                        // life — pool spin-up is paid once, not per query.
                        let engine = Engine::new(core.cfg.threads);
                        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                        let n = core.graph.num_vertices();
                        while let Some(jobs) =
                            core.queue.pop_batch(MAX_LANES, |spec| coalescable(spec, n))
                        {
                            core.execute_batch(w, &engine, &probes, jobs);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Self { core, workers }
    }

    /// The current counters (what the `stats` meta-query renders).
    pub fn stats(&self) -> StatsSnapshot {
        self.core.snapshot()
    }

    /// The current Prometheus text exposition (what the `metrics`
    /// meta-query returns in its `body`).
    pub fn metrics_text(&self) -> String {
        self.core.render_prometheus()
    }

    /// Routes one already-read request line (test/embedding hook; the
    /// transports below are line-loops over exactly this).
    pub fn dispatch(&self, line: &str, out: &Out) {
        self.core.dispatch_line(line, out);
    }

    /// Serves newline-delimited requests from `input` until EOF, writing
    /// responses to `output` (the stdio transport:
    /// `... | ppgraph serve g.ppg | ...`). Response order across
    /// *different* queries is completion order, not arrival order — match
    /// by `id`. Returns the final stats once the queue drains.
    pub fn serve_lines(
        self,
        input: impl BufRead,
        output: impl Write + Send + 'static,
    ) -> StatsSnapshot {
        let out: Out = Arc::new(Mutex::new(Box::new(output)));
        for line in input.lines() {
            match line {
                Ok(line) => self.core.dispatch_line(&line, &out),
                Err(_) => break,
            }
            // ORDERING: Relaxed — poll of the shutdown latch; see the
            // store in `dispatch_line` (no data rides on this flag).
            if self.core.stop.load(Ordering::Relaxed) {
                break;
            }
        }
        self.finish()
    }

    /// Serves TCP connections accepted from `listener` (one reader thread
    /// per connection) until a `shutdown` request arrives, then drains and
    /// returns the final stats. Bind the listener yourself — port 0 gives
    /// an ephemeral port for tests:
    ///
    /// ```no_run
    /// # use pp_serve::{Server, ServeConfig};
    /// # let g = pp_graph::gen::path(8);
    /// let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    /// let addr = listener.local_addr().unwrap();
    /// let stats = Server::new(g, ServeConfig::default()).serve_tcp(listener);
    /// # let _ = (addr, stats);
    /// ```
    pub fn serve_tcp(self, listener: TcpListener) -> StatsSnapshot {
        listener
            .set_nonblocking(true)
            .expect("set listener nonblocking");
        // ORDERING: Relaxed — poll of the shutdown latch; the accept loop
        // only needs to see the flag eventually (no data rides on it).
        while !self.core.stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let core = self.core.clone();
                    std::thread::spawn(move || handle_connection(core, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        self.finish()
    }

    /// Closes the queue, lets the workers drain it, joins them, writes the
    /// per-query trace (if configured), and returns the final counters.
    fn finish(self) -> StatsSnapshot {
        self.core.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        if let (Some(path), Some(trace)) = (&self.core.cfg.trace_queries, &self.core.trace) {
            // Best-effort: a bad trace path must not lose the final stats.
            if let Ok(mut f) = std::fs::File::create(path) {
                let _ = trace.lock().unwrap().write(&mut f);
            }
        }
        self.core.snapshot()
    }
}

/// Reader loop for one TCP connection: requests in lines, responses out
/// through the shared write half (workers answer on it directly, so a
/// slow query does not block the next request on the same connection).
fn handle_connection(core: Arc<Core>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out: Out = Arc::new(Mutex::new(Box::new(write_half)));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        match line {
            Ok(line) => core.dispatch_line(&line, &out),
            Err(_) => break,
        }
        // ORDERING: Relaxed — poll of the shutdown latch; see the store
        // in `dispatch_line` (no data rides on this flag).
        if core.stop.load(Ordering::Relaxed) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use pp_graph::gen;
    use std::time::Instant;

    /// An in-memory `Out` whose contents tests can read back.
    #[derive(Clone, Default)]
    struct Sink(Arc<Mutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Sink {
        fn lines(&self) -> Vec<Value> {
            let bytes = self.0.lock().unwrap().clone();
            String::from_utf8(bytes)
                .unwrap()
                .lines()
                .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
                .collect()
        }
    }

    fn server(queue: usize) -> Server {
        Server::new(
            gen::rmat(7, 6, 3),
            ServeConfig {
                workers: 1,
                threads: 1,
                queue,
                name: "test".to_string(),
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn serve_lines_answers_every_request_and_drains_on_eof() {
        let sink = Sink::default();
        let input = b"{\"algo\": \"cc\", \"id\": 1}\n\
                      \n\
                      {\"algo\": \"bfs\", \"source\": 0, \"id\": 2}\n\
                      {\"op\": \"stats\"}\n"
            .to_vec();
        let stats = server(8).serve_lines(&input[..], sink.clone());
        assert_eq!(stats.served, 2);
        assert_eq!(stats.rejected, 0);
        let lines = sink.lines();
        assert_eq!(lines.len(), 3, "blank line answered nothing");
        // Two run responses (matched by id) and one stats response.
        let by_id = |id: u64| {
            lines
                .iter()
                .find(|l| l.get("id").and_then(Value::u64) == Some(id))
                .unwrap_or_else(|| panic!("no response with id {id}"))
        };
        assert_eq!(by_id(1).get("ok").unwrap().bool(), Some(true));
        assert!(by_id(1).get("summary").unwrap().get("components").is_some());
        assert!(by_id(2).get("latency_ns").unwrap().u64().unwrap() > 0);
        let stats_line = lines
            .iter()
            .find(|l| l.get("op").and_then(Value::str) == Some("stats"))
            .unwrap();
        assert!(stats_line.get("latency").unwrap().get("count").is_some());
    }

    #[test]
    fn malformed_and_invalid_queries_answer_structurally_and_do_not_kill_the_server() {
        let sink = Sink::default();
        let input = b"this is not json\n\
                      {\"algo\": \"nope\", \"id\": 1}\n\
                      {\"algo\": \"bfs\", \"source\": 100000, \"id\": 2}\n\
                      {\"algo\": \"mst\", \"id\": 3}\n\
                      {\"algo\": \"bc\", \"params\": {\"bc_sources\": 0}, \"id\": 4}\n\
                      {\"algo\": \"cc\", \"id\": 5}\n"
            .to_vec();
        let stats = server(8).serve_lines(&input[..], sink.clone());
        let lines = sink.lines();
        assert_eq!(lines.len(), 6);
        let kind_of = |v: &Value| {
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::str)
                .map(str::to_string)
        };
        assert_eq!(kind_of(&lines[0]).as_deref(), Some(KIND_BAD_REQUEST));
        let by_id = |id: u64| {
            lines
                .iter()
                .find(|l| l.get("id").and_then(Value::u64) == Some(id))
                .unwrap()
                .clone()
        };
        assert_eq!(kind_of(&by_id(1)).as_deref(), Some("unknown_algo"));
        assert_eq!(kind_of(&by_id(2)).as_deref(), Some("source_out_of_range"));
        assert_eq!(kind_of(&by_id(3)).as_deref(), Some("needs_weights"));
        assert_eq!(kind_of(&by_id(4)).as_deref(), Some("bad_param"));
        // The valid query after five failures still ran.
        assert_eq!(by_id(5).get("ok").unwrap().bool(), Some(true));
        assert_eq!(stats.served, 1);
        assert_eq!(stats.errors, 4);
    }

    #[test]
    fn shutdown_request_stops_the_line_loop_before_later_lines() {
        let sink = Sink::default();
        let input = b"{\"op\": \"shutdown\"}\n{\"algo\": \"cc\", \"id\": 9}\n".to_vec();
        let stats = server(8).serve_lines(&input[..], sink.clone());
        let lines = sink.lines();
        assert_eq!(lines.len(), 1, "the line after shutdown is never read");
        assert_eq!(lines[0].get("draining").unwrap().bool(), Some(true));
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn metrics_meta_query_returns_prometheus_text() {
        // Dispatch the runs, wait for the async workers to finish them,
        // then render — the meta-query itself answers inline, so a fixed
        // input script would race the counters.
        let s = server(8);
        let sink = Sink::default();
        let out: Out = Arc::new(Mutex::new(Box::new(sink.clone())));
        s.dispatch("{\"algo\": \"cc\", \"id\": 1}", &out);
        s.dispatch("{\"algo\": \"nope\", \"id\": 2}", &out);
        let deadline = Instant::now() + Duration::from_secs(30);
        while s.stats().served + s.stats().errors < 2 {
            assert!(Instant::now() < deadline, "workers never drained");
            std::thread::sleep(Duration::from_millis(5));
        }
        s.dispatch("{\"op\": \"metrics\"}", &out);
        let lines = sink.lines();
        let metrics = lines
            .iter()
            .find(|l| l.get("op").and_then(Value::str) == Some("metrics"))
            .expect("no metrics response");
        assert_eq!(metrics.get("ok").unwrap().bool(), Some(true));
        let body = metrics.get("body").unwrap().str().unwrap();
        assert!(body.contains("# TYPE pp_serve_queries_total counter"));
        assert!(body.contains("algo=\"cc\",outcome=\"ok\""));
        assert!(body.contains("algo=\"nope\",outcome=\"error\""));
        assert!(body.contains("# TYPE pp_serve_run_ns summary"));
        assert!(body.contains("# TYPE pp_serve_run_ns_window summary"));
        assert!(body.contains("pp_serve_uptime_seconds"));
        assert!(body.contains("pp_serve_worker_utilization{worker=\"0\"}"));
    }

    #[test]
    fn stats_decomposition_is_consistent_and_error_kinds_are_tallied() {
        let sink = Sink::default();
        let input = b"{\"algo\": \"cc\", \"id\": 1}\n\
                      {\"algo\": \"bfs\", \"id\": 2}\n\
                      {\"algo\": \"nope\", \"id\": 3}\n"
            .to_vec();
        let stats = server(8).serve_lines(&input[..], sink.clone());
        assert_eq!(stats.served, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.errors_by_kind, vec![("unknown_algo".to_string(), 1)]);
        // Queue/run histograms saw every completed query (ok and error).
        assert_eq!(stats.queue_lat.count, 3);
        assert_eq!(stats.run_lat.count, 3);
        // A freshly-booted server's window still holds everything.
        assert_eq!(stats.window_run_lat.count, 3);
        let served: u64 = stats.per_algo.iter().map(|a| a.served).sum();
        let errors: u64 = stats.per_algo.iter().map(|a| a.errors).sum();
        assert_eq!(served, 2);
        assert_eq!(errors, 1);
        assert_eq!(stats.worker_utilization.len(), 1);
        assert!(stats.worker_utilization[0] > 0.0);
    }

    #[test]
    fn trace_queries_config_writes_paired_spans_at_drain() {
        let path =
            std::env::temp_dir().join(format!("pp_serve_unit_trace_{}.json", std::process::id()));
        let sink = Sink::default();
        let input = b"{\"algo\": \"cc\", \"id\": 1}\n{\"algo\": \"bfs\", \"id\": 2}\n".to_vec();
        let s = Server::new(
            gen::rmat(7, 6, 3),
            ServeConfig {
                workers: 1,
                threads: 1,
                queue: 8,
                name: "traced".to_string(),
                trace_queries: Some(path.to_string_lossy().into_owned()),
                ..ServeConfig::default()
            },
        );
        let stats = s.serve_lines(&input[..], sink.clone());
        assert_eq!(stats.served, 2);
        let text = std::fs::read_to_string(&path).expect("trace written at drain");
        let _ = std::fs::remove_file(&path);
        let Value::Arr(events) = json::parse(&text).unwrap() else {
            panic!("trace is not an array");
        };
        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::str) == Some(ph))
                .count()
        };
        assert_eq!(count("b"), 2, "one queue-wait span per query");
        assert_eq!(count("e"), 2);
        // Two run spans on the worker lane + lane-name metadata events.
        let runs: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::str) == Some("X")
                    && e.get("cat").and_then(Value::str) == Some("run")
            })
            .collect();
        assert_eq!(runs.len(), 2);
        for r in &runs {
            assert_eq!(r.get("tid").and_then(Value::u64), Some(1));
        }
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::str) == Some("M")));
    }

    #[test]
    fn pop_batch_coalesces_compatible_bfs_and_leaves_the_rest_in_order() {
        let q = JobQueue::new(16);
        let out: Out = Arc::new(Mutex::new(Box::new(Sink::default())));
        let mk = |algo: &str, source: u32, mode_name: &'static str, seq: u64| Job {
            spec: QuerySpec {
                algo: algo.to_string(),
                source,
                mode_name,
                ..QuerySpec::default()
            },
            out: out.clone(),
            admitted_ns: seq,
            seq,
        };
        let n = 128;
        for job in [
            mk("bfs", 1, "atomic", 0),
            mk("cc", 0, "atomic", 1),
            mk("msbfs", 2, "atomic", 2), // alias — joins the bfs batch
            mk("bfs", 900, "atomic", 3), // out of range — must run solo
            mk("bfs", 3, "pa", 4),       // different mode — must not join
            mk("bfs", 4, "atomic", 5),
        ] {
            assert!(q.try_push(job).is_ok());
        }
        let seqs = |jobs: &[Job]| jobs.iter().map(|j| j.seq).collect::<Vec<_>>();
        let batch = q.pop_batch(MAX_LANES, |s| coalescable(s, n)).unwrap();
        assert_eq!(seqs(&batch), vec![0, 2, 5], "compatible bfs coalesce");
        // The skipped jobs kept their relative order and come out solo.
        for expect in [vec![1], vec![3], vec![4]] {
            let b = q.pop_batch(MAX_LANES, |s| coalescable(s, n)).unwrap();
            assert_eq!(seqs(&b), expect);
        }
        q.close();
        assert!(q.pop_batch(MAX_LANES, |s| coalescable(s, n)).is_none());
    }

    #[test]
    fn pop_batch_respects_the_claim_cap() {
        let q = JobQueue::new(16);
        let out: Out = Arc::new(Mutex::new(Box::new(Sink::default())));
        for seq in 0..6u64 {
            assert!(q
                .try_push(Job {
                    spec: QuerySpec {
                        algo: "bfs".to_string(),
                        source: seq as u32,
                        ..QuerySpec::default()
                    },
                    out: out.clone(),
                    admitted_ns: seq,
                    seq,
                })
                .is_ok());
        }
        let batch = q.pop_batch(4, |s| coalescable(s, 128)).unwrap();
        assert_eq!(batch.len(), 4);
        let rest = q.pop_batch(4, |s| coalescable(s, 128)).unwrap();
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn queued_bfs_queries_coalesce_into_one_batched_run() {
        let s = Server::new(
            gen::rmat(7, 6, 3),
            ServeConfig {
                workers: 1,
                threads: 1,
                queue: 16,
                name: "test".to_string(),
                ..ServeConfig::default()
            },
        );
        let sink = Sink::default();
        let out: Out = Arc::new(Mutex::new(Box::new(sink.clone())));
        // Occupy the single worker with a slow query so the bfs burst
        // queues up behind it and gets claimed as one batch.
        s.dispatch(
            "{\"algo\": \"bc\", \"params\": {\"bc_sources\": 64}, \"id\": 0}",
            &out,
        );
        for i in 1..=5 {
            s.dispatch(
                &format!("{{\"algo\": \"bfs\", \"source\": {i}, \"id\": {i}}}"),
                &out,
            );
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while s.stats().served < 6 {
            assert!(Instant::now() < deadline, "workers never drained");
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = s.stats();
        assert!(stats.batches >= 1, "no batch formed: {stats:?}");
        assert!(stats.coalesced >= 2);
        assert!(stats.max_batch >= 2);
        let lines = sink.lines();
        for i in 1..=5u64 {
            let resp = lines
                .iter()
                .find(|l| l.get("id").and_then(Value::u64) == Some(i))
                .unwrap_or_else(|| panic!("no response with id {i}"));
            assert_eq!(resp.get("ok").unwrap().bool(), Some(true));
            assert!(resp.get("batched").unwrap().u64().unwrap() >= 1);
            assert!(resp.get("summary").unwrap().get("reached").is_some());
        }
        // The batch histogram and coalesced counter made it to Prometheus.
        let body = s.metrics_text();
        assert!(body.contains(M_BATCH_SIZE));
        assert!(body.contains(M_COALESCED));
    }

    #[test]
    fn queue_capacity_is_enforced_once_closed() {
        // A closed queue refuses instead of buffering.
        let s = server(2);
        s.core.queue.close();
        let sink = Sink::default();
        let out: Out = Arc::new(Mutex::new(Box::new(sink.clone())));
        s.dispatch("{\"algo\": \"cc\"}", &out);
        let lines = sink.lines();
        assert_eq!(
            lines[0].get("error").unwrap().get("kind").unwrap().str(),
            Some(KIND_SHUTTING_DOWN)
        );
        assert_eq!(s.stats().rejected, 1);
    }
}
