//! The resident query service: one hot graph, a bounded admission queue,
//! and a pool of worker runners draining it through
//! [`pp_engine::registry`].
//!
//! ## Anatomy
//!
//! ```text
//!             reader threads (1/conn or stdio)            worker runners
//!  NDJSON ──▶ parse_request ──▶ admission queue (bounded) ──▶ registry::run_checked
//!     │            │                  │ full?                      │
//!     │            └── bad_request ◀──┴── overloaded               └──▶ response line
//!     └── EOF / {"op":"shutdown"} → close queue → drain → join
//! ```
//!
//! * **Admission control** — the queue holds at most `queue` jobs
//!   ([`ServeConfig::queue`]). A query arriving while it is full gets an
//!   immediate structured `overloaded` rejection from the reader thread;
//!   nothing buffers without bound and the reader never blocks on the
//!   runners.
//! * **Worker runners** — each worker owns its own [`Engine`] (pool of
//!   [`ServeConfig::threads`] threads) and probe shards, so concurrent
//!   queries never share a round loop; the graph itself is shared
//!   read-only. Digests are identical to a direct [`registry`] run of the
//!   same config on an engine of the same thread count.
//! * **Latency accounting** — every completed query records
//!   admission→completion nanoseconds into a shared
//!   [`pp_telemetry::LogHistogram`]; the `stats` meta-query reports
//!   p50/p95/p99/max plus served/rejected/error counters.
//! * **Graceful shutdown** — EOF (stdio transport) or a `shutdown` request
//!   (any transport) closes the queue: admitted queries still execute and
//!   answer, new ones are refused as `shutting_down`, and the serve loop
//!   returns the final [`StatsSnapshot`] once the workers drain.
//!
//! [`registry`]: pp_engine::registry

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pp_engine::registry::{self, RunConfig};
use pp_engine::{Engine, ProbeShards};
use pp_graph::CsrGraph;
use pp_telemetry::timing::Clock;
use pp_telemetry::{LogHistogram, MetricsLevel, NullProbe};

use crate::protocol::{
    self, parse_request, QuerySpec, Request, StatsSnapshot, KIND_BAD_REQUEST, KIND_OVERLOADED,
    KIND_SHUTTING_DOWN,
};

/// Server knobs. `Default` is sized for the 2-core CI box: two worker
/// runners of one engine thread each and a 64-deep admission queue.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker runners executing queries concurrently (min 1).
    pub workers: usize,
    /// Engine threads per worker runner (min 1). `workers × threads`
    /// should not exceed the machine's cores by much — each worker owns a
    /// full engine pool.
    pub threads: usize,
    /// Admission queue capacity (min 1): queries beyond
    /// `workers + queue` in flight are rejected as `overloaded`.
    pub queue: usize,
    /// Dataset label echoed into response rows (snapshot path).
    pub name: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            threads: 1,
            queue: 64,
            name: "<graph>".to_string(),
        }
    }
}

/// A sink responses are written to: shared because the worker that
/// finishes a query writes to the same stream the reader thread rejects
/// on. One response line per `write_line` call, flushed — NDJSON framing
/// over TCP needs the flush.
type Out = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_line(out: &Out, line: &str) {
    let mut w = out.lock().unwrap();
    // A vanished client (broken pipe) must not kill the server; its
    // remaining in-flight responses just go nowhere.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// One admitted query: what to run, where to answer, when it was admitted.
struct Job {
    spec: QuerySpec,
    out: Out,
    admitted_ns: u64,
}

/// The bounded admission queue: `try_push` never blocks (that is the
/// point), `pop` blocks until a job or close-and-empty.
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    capacity: usize,
    closed: bool,
}

/// Why a push was refused.
enum PushError {
    Full,
    Closed,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut q = self.inner.lock().unwrap();
        if q.closed {
            return Err(PushError::Closed);
        }
        if q.jobs.len() >= q.capacity {
            return Err(PushError::Full);
        }
        q.jobs.push_back(job);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed *and* drained.
    fn pop(&self) -> Option<Job> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(job) = q.jobs.pop_front() {
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    fn depth(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// State shared between reader threads, worker runners, and the accept
/// loop.
struct Core {
    graph: Arc<CsrGraph>,
    cfg: ServeConfig,
    queue: JobQueue,
    clock: Clock,
    served: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    latency: Mutex<LogHistogram>,
    stop: AtomicBool,
}

impl Core {
    fn snapshot(&self) -> StatsSnapshot {
        let lat = self.latency.lock().unwrap();
        StatsSnapshot {
            uptime_ns: self.clock.now_ns(),
            dataset: self.cfg.name.clone(),
            n: self.graph.num_vertices(),
            m: self.graph.num_edges(),
            workers: self.cfg.workers,
            threads_per_worker: self.cfg.threads,
            queue_capacity: self.cfg.queue,
            queue_depth: self.queue.depth(),
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            latency_count: lat.count(),
            latency_mean_ns: lat.mean(),
            latency_p50_ns: lat.p50(),
            latency_p95_ns: lat.p95(),
            latency_p99_ns: lat.p99(),
            latency_max_ns: lat.max(),
        }
    }

    /// Parses and routes one input line. Meta-queries answer inline from
    /// the reader thread (they must work even when the runners are
    /// saturated — that is when you need `stats` most); run queries go
    /// through admission.
    fn dispatch_line(self: &Arc<Self>, line: &str, out: &Out) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        match parse_request(line) {
            Err(msg) => write_line(out, &protocol::render_error(None, KIND_BAD_REQUEST, &msg)),
            Ok(Request::Ping) => write_line(out, &protocol::render_pong()),
            Ok(Request::Stats) => write_line(out, &protocol::render_stats(&self.snapshot())),
            Ok(Request::Shutdown) => {
                write_line(out, &protocol::render_shutdown_ack());
                self.stop.store(true, Ordering::SeqCst);
                self.queue.close();
            }
            Ok(Request::Run(spec)) => {
                let id = spec.id.clone();
                let job = Job {
                    spec,
                    out: out.clone(),
                    admitted_ns: self.clock.now_ns(),
                };
                match self.queue.try_push(job) {
                    Ok(()) => {}
                    Err(PushError::Full) => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        write_line(
                            out,
                            &protocol::render_error(
                                id.as_deref(),
                                KIND_OVERLOADED,
                                &format!("admission queue full (capacity {})", self.cfg.queue),
                            ),
                        );
                    }
                    Err(PushError::Closed) => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        write_line(
                            out,
                            &protocol::render_error(
                                id.as_deref(),
                                KIND_SHUTTING_DOWN,
                                "server is draining; no new queries",
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Executes one admitted job on this worker's engine and answers it.
    fn execute(&self, engine: &Engine, probes: &ProbeShards<NullProbe>, job: Job) {
        let Job {
            spec,
            out,
            admitted_ns,
        } = job;
        let cfg = RunConfig {
            policy: spec.policy,
            mode: spec.mode,
            collect: if spec.metrics {
                MetricsLevel::Timing
            } else {
                MetricsLevel::Off
            },
            source: spec.source,
            lp_iters: spec.lp_iters,
            bc_sources: spec.bc_sources,
            ..RunConfig::new(engine, probes)
        };
        let started = Instant::now();
        let result = registry::run_checked(&spec.algo, &cfg, &self.graph);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        let line = match &result {
            Ok(run) => {
                let latency_ns = self.clock.now_ns().saturating_sub(admitted_ns);
                self.served.fetch_add(1, Ordering::Relaxed);
                self.latency.lock().unwrap().record(latency_ns);
                protocol::render_run_response(
                    &spec,
                    &self.cfg.name,
                    engine.threads(),
                    run,
                    ms,
                    latency_ns,
                )
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                protocol::render_run_error(spec.id.as_deref(), e)
            }
        };
        write_line(&out, &line);
    }
}

/// A running server: workers are live from [`Server::new`] on; feed it a
/// transport with [`Server::serve_lines`] or [`Server::serve_tcp`].
pub struct Server {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads `graph` resident and spawns the worker runners. The graph is
    /// read-only from here on; queries needing weights fail structurally
    /// if it has none (attach weights before constructing — see
    /// `ppgraph serve --weights`).
    pub fn new(graph: CsrGraph, cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            threads: cfg.threads.max(1),
            queue: cfg.queue.max(1),
            ..cfg
        };
        let core = Arc::new(Core {
            graph: Arc::new(graph),
            cfg: cfg.clone(),
            queue: JobQueue::new(cfg.queue),
            clock: Clock::start(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Mutex::new(LogHistogram::new()),
            stop: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let core = core.clone();
                std::thread::Builder::new()
                    .name(format!("pp-serve-worker-{w}"))
                    .spawn(move || {
                        // Each worker owns an engine pool for its whole
                        // life — pool spin-up is paid once, not per query.
                        let engine = Engine::new(core.cfg.threads);
                        let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
                        while let Some(job) = core.queue.pop() {
                            core.execute(&engine, &probes, job);
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        Self { core, workers }
    }

    /// The current counters (what the `stats` meta-query renders).
    pub fn stats(&self) -> StatsSnapshot {
        self.core.snapshot()
    }

    /// Routes one already-read request line (test/embedding hook; the
    /// transports below are line-loops over exactly this).
    pub fn dispatch(&self, line: &str, out: &Out) {
        self.core.dispatch_line(line, out);
    }

    /// Serves newline-delimited requests from `input` until EOF, writing
    /// responses to `output` (the stdio transport:
    /// `... | ppgraph serve g.ppg | ...`). Response order across
    /// *different* queries is completion order, not arrival order — match
    /// by `id`. Returns the final stats once the queue drains.
    pub fn serve_lines(
        self,
        input: impl BufRead,
        output: impl Write + Send + 'static,
    ) -> StatsSnapshot {
        let out: Out = Arc::new(Mutex::new(Box::new(output)));
        for line in input.lines() {
            match line {
                Ok(line) => self.core.dispatch_line(&line, &out),
                Err(_) => break,
            }
            if self.core.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        self.finish()
    }

    /// Serves TCP connections accepted from `listener` (one reader thread
    /// per connection) until a `shutdown` request arrives, then drains and
    /// returns the final stats. Bind the listener yourself — port 0 gives
    /// an ephemeral port for tests:
    ///
    /// ```no_run
    /// # use pp_serve::{Server, ServeConfig};
    /// # let g = pp_graph::gen::path(8);
    /// let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    /// let addr = listener.local_addr().unwrap();
    /// let stats = Server::new(g, ServeConfig::default()).serve_tcp(listener);
    /// # let _ = (addr, stats);
    /// ```
    pub fn serve_tcp(self, listener: TcpListener) -> StatsSnapshot {
        listener
            .set_nonblocking(true)
            .expect("set listener nonblocking");
        while !self.core.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let core = self.core.clone();
                    std::thread::spawn(move || handle_connection(core, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        self.finish()
    }

    /// Closes the queue, lets the workers drain it, joins them, and
    /// returns the final counters.
    fn finish(self) -> StatsSnapshot {
        self.core.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        self.core.snapshot()
    }
}

/// Reader loop for one TCP connection: requests in lines, responses out
/// through the shared write half (workers answer on it directly, so a
/// slow query does not block the next request on the same connection).
fn handle_connection(core: Arc<Core>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out: Out = Arc::new(Mutex::new(Box::new(write_half)));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        match line {
            Ok(line) => core.dispatch_line(&line, &out),
            Err(_) => break,
        }
        if core.stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use pp_graph::gen;

    /// An in-memory `Out` whose contents tests can read back.
    #[derive(Clone, Default)]
    struct Sink(Arc<Mutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Sink {
        fn lines(&self) -> Vec<Value> {
            let bytes = self.0.lock().unwrap().clone();
            String::from_utf8(bytes)
                .unwrap()
                .lines()
                .map(|l| json::parse(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
                .collect()
        }
    }

    fn server(queue: usize) -> Server {
        Server::new(
            gen::rmat(7, 6, 3),
            ServeConfig {
                workers: 1,
                threads: 1,
                queue,
                name: "test".to_string(),
            },
        )
    }

    #[test]
    fn serve_lines_answers_every_request_and_drains_on_eof() {
        let sink = Sink::default();
        let input = b"{\"algo\": \"cc\", \"id\": 1}\n\
                      \n\
                      {\"algo\": \"bfs\", \"source\": 0, \"id\": 2}\n\
                      {\"op\": \"stats\"}\n"
            .to_vec();
        let stats = server(8).serve_lines(&input[..], sink.clone());
        assert_eq!(stats.served, 2);
        assert_eq!(stats.rejected, 0);
        let lines = sink.lines();
        assert_eq!(lines.len(), 3, "blank line answered nothing");
        // Two run responses (matched by id) and one stats response.
        let by_id = |id: u64| {
            lines
                .iter()
                .find(|l| l.get("id").and_then(Value::u64) == Some(id))
                .unwrap_or_else(|| panic!("no response with id {id}"))
        };
        assert_eq!(by_id(1).get("ok").unwrap().bool(), Some(true));
        assert!(by_id(1).get("summary").unwrap().get("components").is_some());
        assert!(by_id(2).get("latency_ns").unwrap().u64().unwrap() > 0);
        let stats_line = lines
            .iter()
            .find(|l| l.get("op").and_then(Value::str) == Some("stats"))
            .unwrap();
        assert!(stats_line.get("latency").unwrap().get("count").is_some());
    }

    #[test]
    fn malformed_and_invalid_queries_answer_structurally_and_do_not_kill_the_server() {
        let sink = Sink::default();
        let input = b"this is not json\n\
                      {\"algo\": \"nope\", \"id\": 1}\n\
                      {\"algo\": \"bfs\", \"source\": 100000, \"id\": 2}\n\
                      {\"algo\": \"mst\", \"id\": 3}\n\
                      {\"algo\": \"bc\", \"params\": {\"bc_sources\": 0}, \"id\": 4}\n\
                      {\"algo\": \"cc\", \"id\": 5}\n"
            .to_vec();
        let stats = server(8).serve_lines(&input[..], sink.clone());
        let lines = sink.lines();
        assert_eq!(lines.len(), 6);
        let kind_of = |v: &Value| {
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::str)
                .map(str::to_string)
        };
        assert_eq!(kind_of(&lines[0]).as_deref(), Some(KIND_BAD_REQUEST));
        let by_id = |id: u64| {
            lines
                .iter()
                .find(|l| l.get("id").and_then(Value::u64) == Some(id))
                .unwrap()
                .clone()
        };
        assert_eq!(kind_of(&by_id(1)).as_deref(), Some("unknown_algo"));
        assert_eq!(kind_of(&by_id(2)).as_deref(), Some("source_out_of_range"));
        assert_eq!(kind_of(&by_id(3)).as_deref(), Some("needs_weights"));
        assert_eq!(kind_of(&by_id(4)).as_deref(), Some("bad_param"));
        // The valid query after five failures still ran.
        assert_eq!(by_id(5).get("ok").unwrap().bool(), Some(true));
        assert_eq!(stats.served, 1);
        assert_eq!(stats.errors, 4);
    }

    #[test]
    fn shutdown_request_stops_the_line_loop_before_later_lines() {
        let sink = Sink::default();
        let input = b"{\"op\": \"shutdown\"}\n{\"algo\": \"cc\", \"id\": 9}\n".to_vec();
        let stats = server(8).serve_lines(&input[..], sink.clone());
        let lines = sink.lines();
        assert_eq!(lines.len(), 1, "the line after shutdown is never read");
        assert_eq!(lines[0].get("draining").unwrap().bool(), Some(true));
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn queue_capacity_is_enforced_once_closed() {
        // A closed queue refuses instead of buffering.
        let s = server(2);
        s.core.queue.close();
        let sink = Sink::default();
        let out: Out = Arc::new(Mutex::new(Box::new(sink.clone())));
        s.dispatch("{\"algo\": \"cc\"}", &out);
        let lines = sink.lines();
        assert_eq!(
            lines[0].get("error").unwrap().get("kind").unwrap().str(),
            Some(KIND_SHUTTING_DOWN)
        );
        assert_eq!(s.stats().rejected, 1);
    }
}
