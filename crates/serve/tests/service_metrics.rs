//! Service-metrics acceptance: a mixed burst over loopback TCP (two
//! algorithms, structured errors, forced overload rejections) must leave
//! every layer of the observability stack consistent:
//!
//! * per-`{algo, outcome}` counters sum to the total requests sent;
//! * each run response decomposes exactly — `queue_ns + run_ns ==
//!   latency_ns` (the three figures come from the same clock readings);
//! * the Prometheus text body parses line by line and every series
//!   belongs to a `# TYPE`-declared family;
//! * the per-query Chrome trace pairs one queue span with one run span
//!   per completed query, on the lane of the worker the response named;
//! * after an injected slow phase, the windowed run percentiles diverge
//!   from the since-boot ones.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use pp_graph::{gen, CsrGraph};
use pp_serve::json::{self, Value};
use pp_serve::{Client, ServeConfig, Server};

fn test_graph() -> CsrGraph {
    let g = gen::rmat(9, 8, 7);
    gen::with_random_weights(&g, 1, 64, 42)
}

fn boot(
    g: CsrGraph,
    cfg: ServeConfig,
) -> (SocketAddr, thread::JoinHandle<pp_serve::StatsSnapshot>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let handle = thread::spawn(move || Server::new(g, cfg).serve_tcp(listener));
    (addr, handle)
}

fn parse(line: &str) -> Value {
    json::parse(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"))
}

/// Splits one Prometheus sample line into (family, labels, value); returns
/// `None` for comment lines. Panics on any line that does not parse —
/// that IS the line-by-line exposition check.
fn parse_prom_line(line: &str) -> Option<(String, String, f64)> {
    if let Some(rest) = line.strip_prefix('#') {
        let rest = rest.trim_start();
        assert!(
            rest.starts_with("TYPE ") || rest.starts_with("HELP "),
            "unknown comment shape: {line:?}"
        );
        return None;
    }
    let (series, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value separator in {line:?}"));
    let value: f64 = value
        .parse()
        .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
    let (family, labels) = match series.split_once('{') {
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set in {line:?}"));
            (name.to_string(), labels.to_string())
        }
        None => (series.to_string(), String::new()),
    };
    assert!(
        family
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "bad metric name in {line:?}"
    );
    Some((family, labels, value))
}

/// Pulls one `key="value"` pair out of a rendered label set.
fn label(labels: &str, key: &str) -> Option<String> {
    labels.split(',').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then(|| v.trim_matches('"').to_string())
    })
}

#[test]
fn mixed_burst_keeps_counters_splits_prometheus_and_trace_consistent() {
    let trace_path = std::env::temp_dir().join(format!(
        "pp_serve_trace_{}_{:?}.json",
        std::process::id(),
        thread::current().id()
    ));
    let (addr, server) = boot(
        test_graph(),
        ServeConfig {
            workers: 2,
            threads: 1,
            queue: 2,
            name: "burst".to_string(),
            trace_queries: Some(trace_path.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        },
    );

    // Phase 1 — lock-step mix of two algorithms plus two structured
    // errors. Lock-step means no admission pressure: all must succeed.
    let mut client = Client::connect(addr).unwrap();
    let mut sent = 0u64;
    let mut ok_workers: BTreeMap<u64, u64> = BTreeMap::new(); // id -> worker
    for i in 0..40u64 {
        let algo = if i % 2 == 0 { "bfs" } else { "cc" };
        let req = format!(
            "{{\"algo\": \"{algo}\", \"source\": {}, \"id\": {i}}}",
            i % 512
        );
        let doc = parse(&client.request(&req).unwrap());
        sent += 1;
        assert_eq!(doc.get("ok").and_then(Value::bool), Some(true), "{req}");
        let queue_ns = doc.get("queue_ns").and_then(Value::u64).unwrap();
        let run_ns = doc.get("run_ns").and_then(Value::u64).unwrap();
        let latency_ns = doc.get("latency_ns").and_then(Value::u64).unwrap();
        assert_eq!(
            queue_ns + run_ns,
            latency_ns,
            "decomposition must be exact: {req}"
        );
        let worker = doc.get("worker").and_then(Value::u64).unwrap();
        assert!(worker < 2, "worker index out of range: {worker}");
        ok_workers.insert(i, worker);
    }
    for bad in [
        "{\"algo\": \"nope\", \"id\": 9000}",
        "{\"algo\": \"bfs\", \"source\": 5000000, \"id\": 9001}",
    ] {
        let doc = parse(&client.request(bad).unwrap());
        sent += 1;
        assert_eq!(doc.get("ok").and_then(Value::bool), Some(false));
    }

    // Phase 2 — flood one connection without reading: a 2-deep queue on
    // 2 workers cannot absorb 30 back-to-back queries, so some must be
    // rejected as overloaded.
    let flood = TcpStream::connect(addr).unwrap();
    flood.set_nodelay(true).unwrap();
    let mut w = flood.try_clone().unwrap();
    for i in 0..30u64 {
        writeln!(
            w,
            "{{\"algo\": \"bfs\", \"source\": {}, \"id\": {}}}",
            i % 512,
            100 + i
        )
        .unwrap();
    }
    w.flush().unwrap();
    let mut flood_ok = 0u64;
    let mut flood_rejected = 0u64;
    let reader = BufReader::new(flood);
    for line in reader.lines().take(30) {
        let doc = parse(&line.unwrap());
        sent += 1;
        if doc.get("ok").and_then(Value::bool) == Some(true) {
            let id = doc.get("id").and_then(Value::u64).unwrap();
            let worker = doc.get("worker").and_then(Value::u64).unwrap();
            let queue_ns = doc.get("queue_ns").and_then(Value::u64).unwrap();
            let run_ns = doc.get("run_ns").and_then(Value::u64).unwrap();
            let latency_ns = doc.get("latency_ns").and_then(Value::u64).unwrap();
            assert_eq!(queue_ns + run_ns, latency_ns);
            ok_workers.insert(id, worker);
            flood_ok += 1;
        } else {
            assert_eq!(
                doc.get("error").unwrap().get("kind").unwrap().str(),
                Some("overloaded")
            );
            flood_rejected += 1;
        }
    }
    assert!(flood_rejected > 0, "the flood produced no rejections");
    assert_eq!(flood_ok + flood_rejected, 30);

    // Stats: the decomposition and breakdown sections must reconcile
    // with what this test counted on the wire.
    let stats = parse(&client.request("{\"op\": \"stats\"}").unwrap());
    let served = stats.get("served").and_then(Value::u64).unwrap();
    let errors = stats.get("errors").and_then(Value::u64).unwrap();
    let rejected = stats.get("rejected").and_then(Value::u64).unwrap();
    assert_eq!(served, 40 + flood_ok);
    assert_eq!(errors, 2);
    assert_eq!(rejected, flood_rejected);
    assert_eq!(served + errors + rejected, sent);
    let kinds = stats.get("errors_by_kind").unwrap();
    assert_eq!(kinds.get("unknown_algo").and_then(Value::u64), Some(1));
    assert_eq!(
        kinds.get("source_out_of_range").and_then(Value::u64),
        Some(1)
    );
    let breakdown = stats.get("breakdown").unwrap();
    // Queue and run histograms record every completed (ok or error) query.
    for half in ["queue", "run"] {
        assert_eq!(
            breakdown
                .get(half)
                .unwrap()
                .get("count")
                .and_then(Value::u64),
            Some(served + errors),
            "{half} breakdown count"
        );
    }
    let algos = stats.get("algos").and_then(Value::arr).unwrap();
    let algo_served: u64 = algos
        .iter()
        .map(|a| a.get("served").and_then(Value::u64).unwrap())
        .sum();
    assert_eq!(algo_served, served, "per-algo served rows sum to served");
    let util = stats.get("workers_util").and_then(Value::arr).unwrap();
    assert_eq!(util.len(), 2);

    // Prometheus: the body parses line by line, every series' family has
    // a # TYPE declaration, and the query counter sums to every request.
    let metrics = parse(&client.request("{\"op\": \"metrics\"}").unwrap());
    assert_eq!(metrics.get("op").and_then(Value::str), Some("metrics"));
    let body = metrics.get("body").and_then(Value::str).unwrap();
    let mut declared = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            declared.push(rest.split(' ').next().unwrap().to_string());
        }
    }
    let mut queries_sum = 0.0;
    let mut outcome_sums: BTreeMap<String, f64> = BTreeMap::new();
    for line in body.lines() {
        let Some((family, labels, value)) = parse_prom_line(line) else {
            continue;
        };
        let base = family
            .strip_suffix("_sum")
            .or_else(|| family.strip_suffix("_count"))
            .unwrap_or(&family);
        assert!(
            declared.iter().any(|d| d == base || d == &family),
            "series {family} has no # TYPE declaration"
        );
        if family == "pp_serve_queries_total" {
            queries_sum += value;
            *outcome_sums
                .entry(label(&labels, "outcome").expect("queries_total carries outcome"))
                .or_insert(0.0) += value;
        }
    }
    assert_eq!(queries_sum as u64, sent, "queries_total sums to requests");
    assert_eq!(
        outcome_sums.get("ok").copied().unwrap_or(0.0) as u64,
        served
    );
    assert_eq!(
        outcome_sums.get("error").copied().unwrap_or(0.0) as u64,
        errors
    );
    assert_eq!(
        outcome_sums.get("rejected").copied().unwrap_or(0.0) as u64,
        rejected
    );

    // Drain, then check the stitched per-query trace.
    let _ = client.request("{\"op\": \"shutdown\"}").unwrap();
    let final_stats = server.join().unwrap();
    assert_eq!(final_stats.served, served);
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace file written at drain");
    let _ = std::fs::remove_file(&trace_path);
    let events = match json::parse(&trace_text).expect("trace is valid JSON") {
        Value::Arr(events) => events,
        other => panic!("trace is not an array: {other:?}"),
    };
    let phase = |e: &Value| e.get("ph").and_then(Value::str).unwrap().to_string();
    let cat = |e: &Value| e.get("cat").and_then(Value::str).unwrap_or("").to_string();
    let completed = (served + errors) as usize;
    let begins: Vec<_> = events.iter().filter(|e| phase(e) == "b").collect();
    let ends: Vec<_> = events.iter().filter(|e| phase(e) == "e").collect();
    let runs: Vec<_> = events
        .iter()
        .filter(|e| phase(e) == "X" && cat(e) == "run")
        .collect();
    let rejections = events
        .iter()
        .filter(|e| phase(e) == "i" && cat(e) == "admission")
        .count();
    assert_eq!(
        begins.len(),
        completed,
        "one queue span per completed query"
    );
    assert_eq!(ends.len(), completed, "every queue span closes");
    assert_eq!(runs.len(), completed, "one run span per completed query");
    assert_eq!(rejections as u64, rejected, "one instant per rejection");
    // Queue spans live on the admission lane and pair up by id.
    let mut begin_ids: Vec<u64> = begins
        .iter()
        .map(|e| {
            assert_eq!(e.get("tid").and_then(Value::u64), Some(0));
            e.get("id").and_then(Value::u64).unwrap()
        })
        .collect();
    let mut end_ids: Vec<u64> = ends
        .iter()
        .map(|e| e.get("id").and_then(Value::u64).unwrap())
        .collect();
    begin_ids.sort_unstable();
    begin_ids.dedup();
    end_ids.sort_unstable();
    assert_eq!(begin_ids.len(), completed, "queue span ids are unique");
    assert_eq!(begin_ids, end_ids, "begin/end ids pair exactly");
    // Every served response's run span sits on the worker lane the
    // response named (lane = 1 + worker index; the trace echoes the
    // request id in its args).
    for (id, worker) in &ok_workers {
        let span = runs
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("id"))
                    .and_then(Value::str)
                    .and_then(|s| s.parse::<u64>().ok())
                    == Some(*id)
            })
            .unwrap_or_else(|| panic!("no run span for query id {id}"));
        assert_eq!(
            span.get("tid").and_then(Value::u64),
            Some(1 + worker),
            "query {id} ran on worker {worker} but its span is on another lane"
        );
    }
}

#[test]
fn windowed_percentiles_diverge_from_boot_after_a_slow_phase() {
    // A short 4 × 1 s window the test can age out deliberately.
    let (addr, server) = boot(
        test_graph(),
        ServeConfig {
            workers: 1,
            threads: 1,
            queue: 8,
            name: "window".to_string(),
            window_buckets: 4,
            window_bucket_ns: 1_000_000_000,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(addr).unwrap();

    // Fast phase: 60 cheap queries dominate the since-boot distribution.
    for i in 0..60u64 {
        let doc = parse(
            &client
                .request(&format!("{{\"algo\": \"bfs\", \"source\": {}}}", i % 512))
                .unwrap(),
        );
        assert_eq!(doc.get("ok").and_then(Value::bool), Some(true));
    }
    // Age the fast phase out of the window entirely.
    thread::sleep(Duration::from_millis(4_300));
    // Slow phase: two expensive queries are now the window's only samples.
    for _ in 0..2 {
        let doc = parse(
            &client
                .request("{\"algo\": \"bc\", \"params\": {\"bc_sources\": 256}}")
                .unwrap(),
        );
        assert_eq!(doc.get("ok").and_then(Value::bool), Some(true));
    }

    let stats = parse(&client.request("{\"op\": \"stats\"}").unwrap());
    let run_q = |v: &Value, k: &str| v.get(k).and_then(Value::u64).unwrap();
    let boot_run = stats.get("breakdown").unwrap().get("run").unwrap().clone();
    let window = stats.get("window").unwrap();
    let window_run = window.get("run").unwrap().clone();
    // Only the slow phase is inside the window...
    assert_eq!(
        run_q(&window_run, "count"),
        2,
        "window holds the slow phase only"
    );
    assert_eq!(run_q(&boot_run, "count"), 62);
    // ...so its p95 sits in a strictly higher latency bucket than the
    // boot-wide p95, which 60 fast samples out of 62 pin to a fast bucket.
    assert!(
        run_q(&window_run, "p95_ns") > run_q(&boot_run, "p95_ns"),
        "windowed p95 {} must exceed since-boot p95 {}",
        run_q(&window_run, "p95_ns"),
        run_q(&boot_run, "p95_ns"),
    );

    let _ = client.request("{\"op\": \"shutdown\"}").unwrap();
    let final_stats = server.join().unwrap();
    assert_eq!(final_stats.served, 62);
}

#[test]
fn meta_queries_answer_inline_while_every_worker_is_saturated() {
    // One worker, and a burst of slow queries nobody reads: the single
    // runner is busy for the whole test. stats/metrics still answer
    // immediately because the reader thread serves them inline — the
    // whole point of not routing meta-queries through admission.
    let (addr, server) = boot(
        test_graph(),
        ServeConfig {
            workers: 1,
            threads: 1,
            queue: 8,
            name: "saturated".to_string(),
            ..ServeConfig::default()
        },
    );
    let burst = TcpStream::connect(addr).unwrap();
    let mut w = burst.try_clone().unwrap();
    const SLOW: usize = 4;
    for i in 0..SLOW {
        writeln!(
            w,
            "{{\"algo\": \"bc\", \"params\": {{\"bc_sources\": 256}}, \"id\": {i}}}"
        )
        .unwrap();
    }
    w.flush().unwrap();

    // From a second connection, both meta-queries must return while the
    // burst is still in flight (each slow query runs for much longer
    // than a meta-query round-trip).
    let mut meta = Client::connect(addr).unwrap();
    let stats = parse(&meta.request("{\"op\": \"stats\"}").unwrap());
    let served_at_stats = stats.get("served").and_then(Value::u64).unwrap();
    assert!(
        (served_at_stats as usize) < SLOW,
        "stats answered only after the burst drained — meta-queries went through the queue"
    );
    let metrics = parse(&meta.request("{\"op\": \"metrics\"}").unwrap());
    assert!(metrics
        .get("body")
        .and_then(Value::str)
        .unwrap()
        .contains("# TYPE"));

    // Now drain the burst: all four slow queries still answer.
    let reader = BufReader::new(burst);
    let mut ok = 0;
    for line in reader.lines().take(SLOW) {
        let doc = parse(&line.unwrap());
        assert_eq!(doc.get("ok").and_then(Value::bool), Some(true));
        ok += 1;
    }
    assert_eq!(ok, SLOW);
    let _ = meta.request("{\"op\": \"shutdown\"}").unwrap();
    let final_stats = server.join().unwrap();
    assert_eq!(final_stats.served, SLOW as u64);
}
