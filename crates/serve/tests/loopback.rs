//! Loopback integration: a real TCP server, real client connections, and
//! the answers checked against direct `registry` runs of the same
//! configuration.
//!
//! Three claims under test:
//!
//! 1. **Correctness under concurrency** — 140 queries across five
//!    algorithms, fired from 1, then 2, then 8 client threads, each come
//!    back with the digest a direct sequential run produces. Workers run
//!    single-threaded engines, so the digests must be *exactly* equal
//!    (floats included), not merely close.
//! 2. **Observability** — after the batch, `stats` reports a latency
//!    histogram whose count matches the served count and whose
//!    percentiles are populated and ordered.
//! 3. **Admission control** — flooding a 1-worker/1-slot server yields
//!    structured `overloaded` rejections for the overflow and normal
//!    answers for the admitted queries: every request is answered, nothing
//!    hangs, nothing crashes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use pp_engine::registry::{self, RunConfig};
use pp_engine::{Engine, ProbeShards};
use pp_graph::{gen, CsrGraph};
use pp_serve::json::{self, Value};
use pp_serve::{Client, ServeConfig, Server};
use pp_telemetry::NullProbe;

/// The shared test graph: weighted, so every registered algorithm
/// (including SSSP/MST) is servable.
fn test_graph() -> CsrGraph {
    let g = gen::rmat(9, 8, 7);
    gen::with_random_weights(&g, 1, 64, 42)
}

/// Boots a TCP server on an ephemeral port; returns its address and the
/// handle whose join yields the final stats.
fn boot(
    g: CsrGraph,
    cfg: ServeConfig,
) -> (SocketAddr, thread::JoinHandle<pp_serve::StatsSnapshot>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let handle = thread::spawn(move || Server::new(g, cfg).serve_tcp(listener));
    (addr, handle)
}

/// The query mix: (algo, source) pairs cycling through five algorithms
/// and spreading sources across the vertex range.
fn query_mix(count: usize, n: usize) -> Vec<(&'static str, u32)> {
    const ALGOS: [&str; 5] = ["bfs", "cc", "pagerank", "sssp", "kcore"];
    (0..count)
        .map(|i| (ALGOS[i % ALGOS.len()], ((i * 37) % n) as u32))
        .collect()
}

/// Runs `algo` directly through the registry on a fresh single-threaded
/// engine — the ground truth a served response must match exactly.
fn direct_summary(g: &CsrGraph, algo: &str, source: u32) -> Vec<(String, String)> {
    let engine = Engine::new(1);
    let probes: ProbeShards<NullProbe> = ProbeShards::new(engine.threads());
    let cfg = RunConfig {
        source,
        ..RunConfig::new(&engine, &probes)
    };
    let run = registry::run_checked(algo, &cfg, g).expect("mix contains only valid queries");
    let mut pairs: Vec<_> = run
        .summary
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    pairs.sort();
    pairs
}

/// Extracts the summary object of an `ok: true` response as sorted pairs.
fn response_summary(line: &str) -> Vec<(String, String)> {
    let v = json::parse(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"));
    assert_eq!(
        v.get("ok").and_then(Value::bool),
        Some(true),
        "expected success: {line}"
    );
    let Some(Value::Obj(map)) = v.get("summary") else {
        panic!("response has no summary object: {line}");
    };
    // BTreeMap iteration is key-sorted, matching the sorted ground truth.
    map.iter()
        .map(|(k, val)| {
            let Value::Str(s) = val else {
                panic!("summary values are strings: {line}");
            };
            (k.clone(), s.clone())
        })
        .collect()
}

#[test]
fn hundred_concurrent_queries_match_direct_runs_and_populate_percentiles() {
    let g = test_graph();
    let n = g.num_vertices();
    let (addr, server) = boot(
        g.clone(),
        ServeConfig {
            workers: 2,
            threads: 1,
            queue: 256,
            name: "loopback".to_string(),
            ..ServeConfig::default()
        },
    );

    // Phases: 1 thread x 20, 2 threads x 20, 8 threads x 10 = 140 queries.
    let mut answered: Vec<(&'static str, u32, String)> = Vec::new();
    let mut total = 0usize;
    for (threads, per_thread) in [(1usize, 20usize), (2, 20), (8, 10)] {
        let mix = Arc::new(query_mix(threads * per_thread, n));
        total += mix.len();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mix = mix.clone();
                thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut got = Vec::new();
                    for (i, &(algo, source)) in
                        mix.iter().enumerate().skip(t * per_thread).take(per_thread)
                    {
                        let req =
                            format!("{{\"algo\": \"{algo}\", \"source\": {source}, \"id\": {i}}}");
                        let resp = client.request(&req).expect("response");
                        got.push((algo, source, resp));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            answered.extend(h.join().expect("client thread"));
        }
    }
    assert_eq!(answered.len(), total);
    assert!(total >= 100, "the mix must exercise at least 100 queries");

    // Percentiles before shutdown: count matches the work done, and the
    // quantiles are populated and ordered.
    let mut meta = Client::connect(addr).expect("connect");
    let stats_line = meta.request("{\"op\": \"stats\"}").expect("stats");
    let stats = json::parse(&stats_line).expect("stats parses");
    let lat = stats.get("latency").expect("latency object");
    let quantile = |k: &str| lat.get(k).and_then(Value::u64).unwrap();
    assert_eq!(lat.get("count").and_then(Value::u64), Some(total as u64));
    assert!(quantile("p50_ns") > 0, "p50 populated: {stats_line}");
    assert!(quantile("p50_ns") <= quantile("p95_ns"));
    assert!(quantile("p95_ns") <= quantile("p99_ns"));
    assert!(quantile("p99_ns") <= quantile("max_ns"));

    let _ = meta
        .request("{\"op\": \"shutdown\"}")
        .expect("shutdown ack");
    let final_stats = server.join().expect("server thread");
    assert_eq!(final_stats.served, total as u64);
    assert_eq!(final_stats.rejected, 0);
    assert_eq!(final_stats.errors, 0);

    // Every served response equals the direct sequential run bit-for-bit.
    let mut truth: HashMap<(&str, u32), Vec<(String, String)>> = HashMap::new();
    for (algo, source, resp) in &answered {
        let expected = truth
            .entry((algo, *source))
            .or_insert_with(|| direct_summary(&g, algo, *source));
        assert_eq!(
            &response_summary(resp),
            expected,
            "served {algo} from {source} diverged from the direct run"
        );
    }
}

#[test]
fn pipelined_bfs_flood_coalesces_and_stays_bit_equal_to_solo_runs() {
    let g = test_graph();
    let n = g.num_vertices();
    let (addr, server) = boot(
        g.clone(),
        ServeConfig {
            workers: 2,
            threads: 1,
            queue: 256,
            name: "coalesce".to_string(),
            ..ServeConfig::default()
        },
    );

    // Three clients each pipeline 20 bfs queries (write all, then read
    // all) so the admission queue floods and workers claim real batches.
    const CLIENTS: usize = 3;
    const PER_CLIENT: usize = 20;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone");
                let mut burst = String::new();
                for i in 0..PER_CLIENT {
                    let id = t * PER_CLIENT + i;
                    let source = (id * 37) % n;
                    burst.push_str(&format!(
                        "{{\"algo\": \"bfs\", \"source\": {source}, \"id\": {id}}}\n"
                    ));
                }
                writer.write_all(burst.as_bytes()).expect("write burst");
                writer.flush().expect("flush");
                let reader = BufReader::new(stream);
                reader
                    .lines()
                    .take(PER_CLIENT)
                    .map(|l| l.expect("read response"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut responses = Vec::new();
    for h in handles {
        responses.extend(h.join().expect("client thread"));
    }
    assert_eq!(responses.len(), CLIENTS * PER_CLIENT);

    // Every response — batched or solo — is bit-equal to the direct
    // single-source registry run of its own source; the batch a query
    // rode in must be invisible everywhere but the `batched` field.
    let mut max_batched = 0u64;
    let mut truth: HashMap<u32, Vec<(String, String)>> = HashMap::new();
    for line in &responses {
        let v = json::parse(line).expect("response parses");
        let id = v.get("id").and_then(Value::u64).expect("id echoed") as usize;
        let source = ((id * 37) % n) as u32;
        let expected = truth
            .entry(source)
            .or_insert_with(|| direct_summary(&g, "bfs", source));
        assert_eq!(
            &response_summary(line),
            expected,
            "served bfs from {source} diverged from the direct run"
        );
        max_batched = max_batched.max(
            v.get("batched")
                .and_then(Value::u64)
                .expect("batched field"),
        );
    }
    assert!(
        max_batched >= 2,
        "a 60-query pipelined flood into 2 workers must coalesce at least once"
    );

    let mut meta = Client::connect(addr).expect("connect");
    let stats_line = meta.request("{\"op\": \"stats\"}").expect("stats");
    let stats = json::parse(&stats_line).expect("stats parses");
    let batching = stats.get("batching").expect("batching object");
    assert!(batching.get("batches").and_then(Value::u64).unwrap() >= 1);
    assert!(batching.get("max_batch").and_then(Value::u64).unwrap() >= 2);

    let _ = meta
        .request("{\"op\": \"shutdown\"}")
        .expect("shutdown ack");
    let final_stats = server.join().expect("server thread");
    assert_eq!(final_stats.served, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(final_stats.errors, 0);
    assert_eq!(final_stats.rejected, 0);
    assert!(final_stats.coalesced >= 2);
}

#[test]
fn flooding_a_tiny_queue_yields_structured_overload_not_hangs() {
    let (addr, server) = boot(
        test_graph(),
        ServeConfig {
            workers: 1,
            threads: 1,
            queue: 1,
            name: "flood".to_string(),
            ..ServeConfig::default()
        },
    );

    // Burst 40 requests down one connection without reading a single
    // response: the reader thread must keep dispatching (rejecting once
    // the one queue slot is taken), not block behind the worker.
    const BURST: usize = 40;
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut burst = String::new();
    for i in 0..BURST {
        burst.push_str(&format!("{{\"algo\": \"pagerank\", \"id\": {i}}}\n"));
    }
    writer.write_all(burst.as_bytes()).expect("write burst");
    writer.flush().expect("flush");

    let reader = BufReader::new(stream);
    let (mut ok, mut overloaded) = (0usize, 0usize);
    for line in reader.lines().take(BURST) {
        let line = line.expect("read response");
        let v = json::parse(&line).expect("every response parses");
        if v.get("ok").and_then(Value::bool) == Some(true) {
            ok += 1;
        } else {
            let kind = v
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::str)
                .expect("failures carry error.kind");
            assert_eq!(kind, "overloaded", "unexpected failure: {line}");
            overloaded += 1;
        }
    }
    assert_eq!(
        ok + overloaded,
        BURST,
        "every request in the burst answered"
    );
    assert!(ok >= 1, "the first request is admitted to an empty queue");
    assert!(
        overloaded >= 1,
        "a 40-deep burst into a 1-slot queue must overflow"
    );

    let mut meta = Client::connect(addr).expect("connect");
    let _ = meta
        .request("{\"op\": \"shutdown\"}")
        .expect("shutdown ack");
    let stats = server.join().expect("server thread");
    assert_eq!(stats.served, ok as u64);
    assert_eq!(stats.rejected, overloaded as u64);
}
