//! Offline stand-in for the `rayon` crate (the build environment has no
//! network access to crates.io, so the workspace vendors the small API
//! subset it uses).
//!
//! Semantics match rayon where the workspace relies on them:
//!
//! * parallel iterators really execute on multiple OS threads (a lazily
//!   started persistent worker pool; scoped spawning as the nested-call
//!   fallback), so atomics/locks in the kernels are genuinely contended;
//! * `fold` produces one accumulator per contiguous chunk and `reduce`
//!   combines them, exactly like rayon's fold/reduce pipeline;
//! * item order is preserved by the order-sensitive adapters
//!   (`map`, `filter`, `enumerate`, `collect`);
//! * `ThreadPool::install` scopes `current_num_threads()` to the pool size.
//!
//! Unlike rayon there is no work-stealing deque: each adapter splits its
//! input into `current_num_threads()` contiguous chunks. That is enough for
//! the block-partitioned kernels in this workspace; the adaptive engine in
//! `pp-engine` brings its own dynamic load balancing.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static INSTALLED: Cell<usize> = const { Cell::new(0) };
}

static GLOBAL: AtomicUsize = AtomicUsize::new(0);

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads parallel adapters will use on this thread, honoring an
/// enclosing [`ThreadPool::install`] and then the global pool, like rayon.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED.with(|c| c.get());
    if installed != 0 {
        return installed;
    }
    let global = GLOBAL.load(Ordering::Relaxed);
    if global != 0 {
        global
    } else {
        hardware_threads()
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim cannot actually
/// fail to build a pool; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (hardware) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; 0 means the hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }

    /// Sets the global pool size used when no `install` is active.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        GLOBAL.store(n, Ordering::Relaxed);
        Ok(())
    }
}

/// A logical thread pool: a thread-count scope. Parallel adapters invoked
/// inside [`ThreadPool::install`] split work across this many OS threads.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

struct InstallGuard {
    prev: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Runs `f` with `current_num_threads()` equal to this pool's size.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let _guard = InstallGuard {
            prev: INSTALLED.with(|c| c.replace(self.num_threads)),
        };
        f()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Parallel execution core: a persistent worker pool.
//
// Spawning OS threads per adapter call would put thread-creation latency
// inside every parallel round and distort the workspace's push-vs-pull
// measurements (hundreds of tiny rounds per BFS on high-diameter graphs).
// Instead, a lazily-started global pool of `hardware_threads() - 1` workers
// parks between rounds. Nested or concurrent adapter calls fall back to
// scoped spawning (the pool's round lock is try-acquired, never waited on),
// so recursive `par_iter` use cannot deadlock.
// ---------------------------------------------------------------------------

mod pool {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    type Payload = Box<dyn std::any::Any + Send + 'static>;
    type Task = dyn Fn(usize) + Sync + 'static;

    #[derive(Clone, Copy)]
    struct RawTask(*const Task);
    // SAFETY: the pointer is only dereferenced while the publishing round
    // holds the round lock, which it keeps until every worker is done.
    unsafe impl Send for RawTask {}

    struct State {
        epoch: u64,
        task: Option<RawTask>,
        active: usize,
    }

    struct Pool {
        state: Mutex<State>,
        start: Condvar,
        done: Condvar,
        cursor: AtomicUsize,
        chunks: AtomicUsize,
        panic: Mutex<Option<Payload>>,
        round: Mutex<()>,
        workers: usize,
    }

    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                active: 0,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            chunks: AtomicUsize::new(0),
            panic: Mutex::new(None),
            round: Mutex::new(()),
            workers: super::hardware_threads().saturating_sub(1),
        })
    }

    /// Spawns the global pool's workers the first time it is used.
    fn ensure_workers() -> &'static Pool {
        static STARTED: OnceLock<()> = OnceLock::new();
        let pool = global();
        STARTED.get_or_init(|| {
            for w in 1..=pool.workers {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{w}"))
                    .spawn(move || worker_loop(global(), w))
                    .expect("failed to spawn rayon-shim worker");
            }
        });
        pool
    }

    fn claim(pool: &Pool, f: &(dyn Fn(usize) + Sync)) {
        let total = pool.chunks.load(Ordering::Relaxed);
        loop {
            let c = pool.cursor.fetch_add(1, Ordering::Relaxed);
            if c >= total {
                return;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(c))) {
                let mut slot = pool.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
        }
    }

    fn worker_loop(pool: &'static Pool, _worker: usize) {
        let mut seen = 0u64;
        loop {
            let task = {
                let mut st = pool.state.lock().unwrap();
                loop {
                    if st.epoch != seen {
                        if let Some(task) = st.task {
                            seen = st.epoch;
                            break task;
                        }
                    }
                    st = pool.start.wait(st).unwrap();
                }
            };
            // SAFETY: see RawTask — the round's caller blocks until
            // `active` returns to zero.
            claim(pool, unsafe { &*task.0 });
            let mut st = pool.state.lock().unwrap();
            st.active -= 1;
            if st.active == 0 {
                pool.done.notify_all();
            }
        }
    }

    /// Runs `f(chunk)` for every `chunk in 0..chunks` on the global pool.
    /// Returns `false` (running nothing) when the pool is busy or has no
    /// workers — the caller must then use its fallback path.
    pub(super) fn try_run(chunks: usize, f: &(dyn Fn(usize) + Sync)) -> bool {
        let pool = ensure_workers();
        if pool.workers == 0 {
            return false;
        }
        let _round = match pool.round.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return false,
        };
        {
            let mut st = pool.state.lock().unwrap();
            pool.cursor.store(0, Ordering::Relaxed);
            pool.chunks.store(chunks, Ordering::Relaxed);
            // SAFETY: lifetime erasure; the round lock is held until every
            // worker finished with the pointer.
            let raw = RawTask(unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &Task>(f) });
            st.task = Some(raw);
            st.active = pool.workers;
            st.epoch += 1;
            pool.start.notify_all();
        }
        claim(pool, f);
        let mut st = pool.state.lock().unwrap();
        while st.active > 0 {
            st = pool.done.wait(st).unwrap();
        }
        st.task = None;
        drop(st);
        let payload = pool.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        true
    }
}

/// Splits `items` into up to `current_num_threads()` contiguous chunks and
/// maps each chunk in parallel (persistent pool when free, scoped threads
/// otherwise), preserving chunk order.
fn run_chunked<T: Send, R: Send>(items: Vec<T>, f: impl Fn(Vec<T>) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads <= 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let total = items.len();
    let chunks = threads.min(total);
    let base = total / chunks;
    let extra = total % chunks;
    let mut parts: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(chunks);
    let mut it = items.into_iter();
    for i in 0..chunks {
        let take = base + usize::from(i < extra);
        parts.push(Mutex::new(Some(it.by_ref().take(take).collect())));
    }
    let results: Vec<Mutex<Option<R>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let run_one = |c: usize| {
        let chunk = parts[c]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("chunk consumed twice");
        let r = f(chunk);
        *results[c].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
    };
    if !pool::try_run(chunks, &run_one) {
        // Pool busy (nested/concurrent par_iter) or single-core: scoped
        // spawning keeps full generality at thread-creation cost.
        std::thread::scope(|s| {
            let run_one = &run_one;
            let handles: Vec<_> = (0..chunks).map(|c| s.spawn(move || run_one(c))).collect();
            for h in handles {
                if h.join().is_err() {
                    panic!("rayon-shim worker panicked");
                }
            }
        });
    }
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("chunk produced no result")
        })
        .collect()
}

/// A materialized parallel iterator: adapters execute eagerly, in parallel,
/// and hand the results to the next stage.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map, preserving order.
    pub fn map<R: Send>(self, f: impl Fn(T) -> R + Sync) -> ParIter<R> {
        let out = run_chunked(self.items, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        ParIter {
            items: out.into_iter().flatten().collect(),
        }
    }

    /// Parallel filter, preserving order.
    pub fn filter(self, pred: impl Fn(&T) -> bool + Sync) -> ParIter<T> {
        let out = run_chunked(self.items, |chunk| {
            chunk.into_iter().filter(|x| pred(x)).collect::<Vec<T>>()
        });
        ParIter {
            items: out.into_iter().flatten().collect(),
        }
    }

    /// Parallel filter_map, preserving order.
    pub fn filter_map<R: Send>(self, f: impl Fn(T) -> Option<R> + Sync) -> ParIter<R> {
        let out = run_chunked(self.items, |chunk| {
            chunk.into_iter().filter_map(&f).collect::<Vec<R>>()
        });
        ParIter {
            items: out.into_iter().flatten().collect(),
        }
    }

    /// Parallel flat_map over a serial inner iterator (rayon's
    /// `flat_map_iter`), preserving order.
    pub fn flat_map_iter<I, R>(self, f: impl Fn(T) -> I + Sync) -> ParIter<R>
    where
        I: IntoIterator<Item = R>,
        R: Send,
    {
        let out = run_chunked(self.items, |chunk| {
            chunk.into_iter().flat_map(&f).collect::<Vec<R>>()
        });
        ParIter {
            items: out.into_iter().flatten().collect(),
        }
    }

    /// Parallel for_each.
    pub fn for_each(self, f: impl Fn(T) + Sync) {
        run_chunked(self.items, |chunk| chunk.into_iter().for_each(&f));
    }

    /// Rayon-style fold: one accumulator per chunk; the result is a parallel
    /// iterator over the per-chunk accumulators.
    pub fn fold<A: Send>(
        self,
        init: impl Fn() -> A + Sync,
        fold_op: impl Fn(A, T) -> A + Sync,
    ) -> ParIter<A> {
        let out = run_chunked(self.items, |chunk| chunk.into_iter().fold(init(), &fold_op));
        ParIter { items: out }
    }

    /// Combines items pairwise starting from `identity()`.
    pub fn reduce(self, identity: impl Fn() -> T, op: impl Fn(T, T) -> T) -> T {
        self.items.into_iter().fold(identity(), op)
    }

    /// Indexes items (order-preserving, like rayon's indexed enumerate).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Parallel sum.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T> + std::iter::Sum<S> + Send,
    {
        let partials = run_chunked(self.items, |chunk| chunk.into_iter().sum::<S>());
        partials.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Maximum item.
    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    /// Minimum item.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }

    /// Collects into a container (order-preserving).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

impl<U: Copy + Send + Sync> ParIter<&U> {
    /// Copies out of shared references.
    pub fn copied(self) -> ParIter<U> {
        ParIter {
            items: self.items.into_iter().copied().collect(),
        }
    }
}

impl<U: Clone + Send + Sync> ParIter<&U> {
    /// Clones out of shared references.
    pub fn cloned(self) -> ParIter<U> {
        ParIter {
            items: self.items.into_iter().cloned().collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (re-exported from `prelude`).
// ---------------------------------------------------------------------------

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(usize, u32, u64, i32, i64);

/// `par_iter()` over shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a shared reference).
    type Item: Send;
    /// A parallel iterator of shared references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` and parallel sorts over exclusive slices.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (an exclusive reference).
    type Item: Send;
    /// A parallel iterator of exclusive references.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Sort methods rayon exposes through `ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Unstable sort (sequential in the shim; sorting is not on any measured
    /// hot path).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by key.
    fn par_sort_unstable_by_key<K: Ord>(&mut self, key: impl Fn(&T) -> K);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord>(&mut self, key: impl Fn(&T) -> K) {
        self.sort_unstable_by_key(key);
    }
}

/// The rayon prelude: the traits that make `.par_iter()` et al. resolve.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_preserves_order() {
        let v: Vec<i32> = (0..1000).collect();
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let v: Vec<u64> = (0..10_000).collect();
        let total = v
            .par_iter()
            .fold(|| 0u64, |acc, &x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..10_000u64).sum());
    }

    #[test]
    fn for_each_runs_on_multiple_threads() {
        let ids = std::sync::Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                // Long enough per item that a parked pool worker wakes and
                // claims work before the caller drains every chunk.
                std::thread::sleep(std::time::Duration::from_millis(2));
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(ids.into_inner().unwrap().len() > 1, "expected >1 worker");
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn atomics_observe_all_updates() {
        let c = AtomicU64::new(0);
        (0..4096usize).into_par_iter().for_each(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn filter_and_enumerate() {
        let v: Vec<usize> = (0..100).collect();
        let evens: Vec<usize> = v.par_iter().map(|&x| x).filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 50);
        let idx: Vec<(usize, usize)> = evens.into_par_iter().enumerate().collect();
        assert_eq!(idx[3], (3, 6));
    }
}
