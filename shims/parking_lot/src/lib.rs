//! Offline stand-in for `parking_lot` backed by `std::sync`. Only the
//! surface this workspace uses: `Mutex`/`RwLock` whose guards come back
//! without a poisoning `Result` (a poisoned lock just yields its inner
//! guard, matching parking_lot's "no poisoning" semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards come back without a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_counts_exactly_under_contention() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
