//! Offline stand-in for `criterion`: identical macro/builder surface for
//! the benches in this workspace, with a plain median-of-samples timer
//! instead of criterion's statistical machinery.
//!
//! Modes, chosen from the harness arguments cargo passes:
//!
//! * `--test` (what `cargo test` passes to bench targets): each benchmark
//!   closure runs exactly once, as a smoke test;
//! * otherwise (`cargo bench`): each benchmark runs `sample_size` samples
//!   (clamped to keep runtimes sane) and prints `name/param  median`.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs closures and measures them.
pub struct Bencher {
    samples: usize,
    /// Median of the measured samples, for the caller to report.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }

    /// Times `f`, constructing a fresh input per sample with `setup`.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> R,
    ) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            times.push(t.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// Top-level driver handed to every benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
            _marker: std::marker::PhantomData,
        }
    }

    /// A standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let samples = if self.test_mode { 1 } else { 10 };
        let mut b = Bencher {
            samples,
            last: None,
        };
        f(&mut b);
        report(&id.id, &b);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = self.bencher();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        // Clamp: this shim is a smoke/ballpark harness, not a statistics
        // engine, and CI budgets are finite.
        let samples = if self.test_mode {
            1
        } else {
            self.sample_size.min(20)
        };
        Bencher {
            samples,
            last: None,
        }
    }
}

fn report(id: &str, b: &Bencher) {
    match b.last {
        Some(d) => println!("{id:<60} {:>12.3} ms", d.as_secs_f64() * 1e3),
        None => println!("{id:<60} (no measurement)"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Harness flags (e.g. `--bench` from cargo bench, `--test` from
            // cargo test) are read by `Criterion::default()`; list mode must
            // print nothing and succeed.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_once_in_test_mode() {
        let mut runs = 0;
        let mut b = Bencher {
            samples: 1,
            last: None,
        };
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.last.is_some());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("push", "orc").id, "push/orc");
        assert_eq!(BenchmarkId::from_parameter(16).id, "16");
    }

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(50)
            .bench_function("x", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
