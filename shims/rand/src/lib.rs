//! Offline stand-in for the `rand` crate: a deterministic xoshiro256++
//! generator behind the `SmallRng`/`SeedableRng`/`Rng`/`SliceRandom` names
//! this workspace uses. Streams are stable across runs and platforms, which
//! the graph generators rely on for reproducible datasets.

/// Core RNG capability: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named random-distribution sources for [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniform value of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range a value of type `T` can be sampled from (the sugar behind
/// `gen_range`). Generic over `T`, like the real crate, so the compiler
/// infers integer literal types in the range from the expected output.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < 2^-40 for the spans used here (< 2^24).
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i32, i64);

/// The user-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniform sample of a [`Standard`] type.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 — the same construction the real
    /// `SmallRng` uses on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=6);
            assert!((5..=6).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
