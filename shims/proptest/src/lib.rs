//! Offline stand-in for `proptest`: the strategy combinators and the
//! `proptest!` macro surface this workspace's property tests use.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with its seed and case number instead), and generation is driven by a
//! deterministic per-test xoshiro stream so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving strategy generation.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A stream derived from a test's name, so every test draws distinct
    /// but reproducible cases.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A value generator. The real proptest separates strategies from value
/// trees (for shrinking); without shrinking a strategy is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                let span = (self.len.end - self.len.start) as u64;
                self.len.start + (rng.next_u64() % span) as usize
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-run configuration; only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` looping over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                // prop_assume! expands to `continue`, skipping this case.
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = crate::Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..5).prop_flat_map(|n| (crate::Just(n), 0usize..n));
        let mut rng = crate::TestRng::deterministic("flat");
        for _ in 0..500 {
            let (n, x) = crate::Strategy::generate(&strat, &mut rng);
            assert!(x < n);
        }
    }

    #[test]
    fn collection_vec_obeys_length_range() {
        let strat = crate::collection::vec(0u32..5, 2..7);
        let mut rng = crate::TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, y in 0u32..100) {
            prop_assume!(x != y);
            prop_assert!(x < 100 && y < 100);
            prop_assert_ne!(x * 2 + 1, y * 2, "odd never equals even");
        }
    }
}
